package workload

import (
	"testing"

	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
)

// depthOf computes the maximum dependency-path length (in nodes) of the
// provenance graph a workload produces, skipping prev-version edges (the
// paper counts derivation depth, not version history).
func depthOf(t *testing.T, w Workload) int {
	t.Helper()
	col := pass.New(sim.NewRand(1), nil)
	for _, ev := range w.Trace.Events {
		if err := col.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	g := col.Graph()
	memo := make(map[prov.Ref]int)
	var depth func(prov.Ref) int
	depth = func(r prov.Ref) int {
		if d, ok := memo[r]; ok {
			return d
		}
		memo[r] = 1 // cycle guard; graph is acyclic anyway
		best := 0
		n := g.Node(r)
		for _, rec := range n.Records {
			if rec.IsXref() && rec.Attr != prov.AttrPrevVer {
				if d := depth(rec.Xref); d > best {
					best = d
				}
			}
		}
		memo[r] = best + 1
		return best + 1
	}
	max := 0
	for _, n := range g.Nodes() {
		if d := depth(n.Ref); d > max {
			max = d
		}
	}
	if err := g.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	return max
}

func TestNightlyShape(t *testing.T) {
	w := Nightly(sim.NewRand(1))
	s := w.Stats()
	if s.MountOps != 240 {
		t.Fatalf("mount ops = %d, want 240", s.MountOps)
	}
	gb := float64(s.MountBytes) / (1 << 30)
	if gb < 9.0 || gb > 11.5 {
		t.Fatalf("uploaded %.2f GB, want ≈10.2", gb)
	}
	if d := depthOf(t, w); d != 3 { // repo file -> cp -> archive
		t.Fatalf("depth = %d, want 3 (nearly flat)", d)
	}
	if s.FinalFiles != 30 {
		t.Fatalf("final files = %d, want 30", s.FinalFiles)
	}
}

func TestBlastShape(t *testing.T) {
	w := Blast(sim.NewRand(2))
	s := w.Stats()
	if s.MountOps < 10200 || s.MountOps > 11300 {
		t.Fatalf("mount ops = %d, want ≈10,773", s.MountOps)
	}
	if d := depthOf(t, w); d != 5 { // db -> blastall -> raw -> blastfmt -> report
		t.Fatalf("depth = %d, want 5", d)
	}
	mb := float64(s.FinalBytes) / (1 << 20)
	if mb < 600 || mb > 830 {
		t.Fatalf("final results = %.1f MB, want ≈713", mb)
	}
	if s.FinalFiles < 590 || s.FinalFiles > 640 {
		t.Fatalf("final files = %d, want ≈615", s.FinalFiles)
	}
	gb := float64(s.MountBytes) / (1 << 30)
	if gb < 2.7 || gb > 4.0 {
		t.Fatalf("uploaded %.2f GB, want ≈3.3", gb)
	}
}

func TestChallengeShape(t *testing.T) {
	w := Challenge(sim.NewRand(3))
	s := w.Stats()
	if s.MountOps < 5800 || s.MountOps > 6600 {
		t.Fatalf("mount ops = %d, want ≈6,179", s.MountOps)
	}
	if d := depthOf(t, w); d != 11 {
		t.Fatalf("depth = %d, want 11", d)
	}
	gb := float64(s.MountBytes) / (1 << 30)
	if gb < 2.2 || gb > 3.2 {
		t.Fatalf("uploaded %.2f GB, want ≈2.6", gb)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"nightly", "blast", "challenge"} {
		w, err := ByName(name, sim.NewRand(4))
		if err != nil || w.Name != name {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nope", sim.NewRand(4)); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadsDeterministicUnderSeed(t *testing.T) {
	a := Blast(sim.NewRand(9)).Stats()
	b := Blast(sim.NewRand(9)).Stats()
	if a != b {
		t.Fatalf("same seed, different stats: %+v vs %+v", a, b)
	}
}

func TestCompileProvenanceSizeAndShape(t *testing.T) {
	const target = 2 << 20 // keep the unit test fast; Table 2 uses 50MB
	bundles := CompileProvenance(sim.NewRand(5), target)
	total := len(prov.EncodeBundles(bundles))
	if total < target || total > target+8192 {
		t.Fatalf("encoded size = %d, want ≈%d (one unit of slack)", total, target)
	}
	// Topological order: xrefs only point backwards.
	seen := make(map[prov.Ref]bool)
	spills := 0
	for _, b := range bundles {
		for _, r := range b.Records {
			if r.IsXref() && !seen[r.Xref] {
				t.Fatalf("bundle %s references %s before it appears", b.Ref, r.Xref)
			}
			if !r.IsXref() && len(r.Value) > 1024 {
				spills++
			}
		}
		seen[b.Ref] = true
	}
	if spills == 0 {
		t.Fatal("no >1KB values; the spill path would go unexercised")
	}
	// Wire round trip of the whole stream.
	got, err := prov.DecodeBundles(prov.EncodeBundles(bundles))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(bundles) {
		t.Fatalf("round trip lost bundles: %d vs %d", len(got), len(bundles))
	}
}
