// Package workload synthesizes the three workloads of the paper's
// evaluation (§5) as system-call traces, plus the Linux-compile provenance
// stream used by the Table-2 service microbenchmark.
//
// Each generator is calibrated to the workload characteristics the paper
// publishes: the nightly CVS backup is I/O-bound with a nearly flat
// provenance tree and ≈240 file-system operations on the mount; Blast mixes
// compute and I/O with a provenance tree of depth five and ≈10,773 mount
// operations; the provenance-challenge workload is the deepest with a
// maximum path length of eleven and ≈6,179 mount operations.
package workload

import (
	"fmt"
	"time"

	"passcloud/internal/sim"
	"passcloud/internal/trace"
)

// Workload is a named trace plus the metadata the benchmarks need.
type Workload struct {
	Name string
	// Trace is the syscall stream replayed through PASS and PA-S3fs.
	Trace trace.Trace
	// FinalPrefix marks the "final results of the computation": the
	// microbenchmark of §5.1 uploads only objects under this prefix.
	FinalPrefix string
	// Program is the process name Q3/Q4 search for in this workload.
	Program string
}

// MB is a convenient size unit for the generators.
const MB = int64(1 << 20)

// Nightly simulates the CVSROOT nightly backup: thirty nights, each
// extracting a snapshot of the repository (local reads), packing it with cp
// into a tarball written to the cloud mount. The provenance tree is nearly
// flat — the archive's only ancestors are the cp process and the repository
// files. ≈240 mount operations, ≈10.2 GB uploaded, negligible compute.
func Nightly(rnd *sim.Rand) Workload {
	b := trace.NewBuilder()
	const nights = 30
	const repoFiles = 40
	repo := make([]string, repoFiles)
	for i := range repo {
		repo[i] = fmt.Sprintf("cvsroot/module%02d,v", i)
	}
	for night := 0; night < nights; night++ {
		pid := b.Spawn(0, "/bin/cp", "cp", "-r", "cvsroot", "backup")
		total := int64(0)
		for _, f := range repo {
			sz := int64(rnd.NormInt(int(8*MB)+int(MB)/2, int(MB/2), int(MB)))
			b.Read(pid, f, sz)
			total += sz
		}
		b.Compute(pid, 400*time.Millisecond) // tar/gzip-ish packing
		out := fmt.Sprintf("mnt/backup/night-%02d.tar", night)
		// The archive streams out in seven chunks, then one close: eight
		// mount operations per night, 240 across the workload.
		chunk := total / 7
		for c := 0; c < 7; c++ {
			b.Write(pid, out, chunk)
		}
		b.Close(pid, out)
		b.Exit(pid)
	}
	return Workload{Name: "nightly", Trace: b.Trace(), FinalPrefix: "mnt/backup/", Program: "cp"}
}

// Blast simulates the NIH protein-search workload: formatdb prepares the
// species databases locally, then each query batch runs blastall (raw hits
// to the mount) and a formatter (final report to the mount). Provenance
// paths have depth five: database -> blastall -> raw -> formatter -> report.
// ≈10,773 mount operations, ≈3.4 GB uploaded, ≈600 final result files
// totalling ≈713 MB.
func Blast(rnd *sim.Rand) Workload {
	b := trace.NewBuilder()
	const batches = 595

	// The formatted species databases are pre-existing local inputs (the
	// NIH job runs against an already-built nr database); keeping them out
	// of the derivation chain gives the workload its depth-five paths:
	// database -> blastall -> raw -> blastfmt -> report.
	for i := 0; i < batches; i++ {
		raw := fmt.Sprintf("mnt/work/raw%03d.out", i)
		rep := fmt.Sprintf("mnt/out/hits%03d.txt", i)
		query := fmt.Sprintf("queries/q%03d.fas", i)

		blast := b.Spawn(0, "/usr/bin/blastall", "blastall", "-p", "blastp", "-d", "nr", "-i", query)
		b.Read(blast, "db/nr.fmt", 12*MB)
		b.Read(blast, query, MB/4)
		b.Compute(blast, 420*time.Millisecond)
		rawSz := int64(rnd.NormInt(int(4*MB)+int(MB)/2, int(MB)/3, int(MB)))
		for c := 0; c < 6; c++ { // six chunked writes
			b.Write(blast, raw, rawSz/6)
		}
		b.Close(blast, raw)
		b.Exit(blast)

		fmtr := b.Spawn(0, "/usr/bin/blastfmt", "blastfmt", raw)
		for c := 0; c < 4; c++ { // four chunked reads of the raw hits
			b.Read(fmtr, raw, rawSz/4)
		}
		b.Compute(fmtr, 130*time.Millisecond)
		repSz := int64(rnd.NormInt(int(MB)+int(MB)/5, int(MB)/8, int(MB)/2))
		for c := 0; c < 5; c++ {
			b.Write(fmtr, rep, repSz/5)
		}
		b.Flush(fmtr, rep)
		b.Close(fmtr, rep)
		b.Exit(fmtr)
	}

	// A handful of whole-run summaries, also final results.
	sum := b.Spawn(0, "/usr/bin/blastsum", "blastsum")
	for i := 0; i < 20; i++ {
		out := fmt.Sprintf("mnt/out/summary%02d.txt", i)
		b.Write(sum, out, MB/2)
		b.Close(sum, out)
	}
	b.Exit(sum)
	return Workload{Name: "blast", Trace: b.Trace(), FinalPrefix: "mnt/out/", Program: "blastall"}
}

// Challenge simulates the first provenance challenge's fMRI pipeline:
// align_warp, reslice, softmean, slicer, convert. The provenance graph is
// the deepest of the three workloads — the path from an input image to a
// graphical atlas has length eleven. ≈6,179 mount operations, ≈2.6 GB
// uploaded.
func Challenge(rnd *sim.Rand) Workload {
	b := trace.NewBuilder()
	const images = 160
	ref := "images/reference.img"

	resliced := make([]string, images)
	for i := 0; i < images; i++ {
		img := fmt.Sprintf("images/anatomy%03d.img", i)
		warp := fmt.Sprintf("mnt/chal/warp%03d.w", i)
		res := fmt.Sprintf("mnt/chal/resliced%03d.img", i)
		resliced[i] = res

		aw := b.Spawn(0, "/usr/bin/align_warp", "align_warp", img, ref, warp)
		b.Read(aw, img, 16*MB)
		b.Read(aw, ref, 12*MB)
		b.Compute(aw, 1200*time.Millisecond)
		wsz := int64(rnd.NormInt(int(MB)/3, int(MB)/16, int(MB)/8))
		b.Write(aw, warp, wsz/2)
		b.Write(aw, warp, wsz/2)
		b.Close(aw, warp)
		b.Exit(aw)

		rs := b.Spawn(0, "/usr/bin/reslice", "reslice", warp, res)
		b.Read(rs, warp, wsz)
		b.Read(rs, img, 16*MB)
		b.Compute(rs, 800*time.Millisecond)
		for c := 0; c < 32; c++ {
			b.Write(rs, res, MB/2)
		}
		b.Close(rs, res)
		b.Exit(rs)
	}

	sm := b.Spawn(0, "/usr/bin/softmean", "softmean", "atlas.img")
	for _, res := range resliced {
		b.Read(sm, res, 16*MB)
	}
	b.Compute(sm, 40*time.Second)
	for c := 0; c < 32; c++ {
		b.Write(sm, "mnt/chal/atlas.img", MB/2)
	}
	b.Close(sm, "mnt/chal/atlas.img")
	b.Exit(sm)

	for _, dim := range []string{"x", "y", "z"} {
		pgm := fmt.Sprintf("mnt/chal/atlas-%s.pgm", dim)
		gif := fmt.Sprintf("mnt/out/atlas-%s.gif", dim)

		sl := b.Spawn(0, "/usr/bin/slicer", "slicer", "-"+dim, "atlas.img")
		b.Read(sl, "mnt/chal/atlas.img", 16*MB)
		b.Compute(sl, 4*time.Second)
		b.Write(sl, pgm, MB/2)
		b.Write(sl, pgm, MB/2)
		b.Close(sl, pgm)
		b.Exit(sl)

		cv := b.Spawn(0, "/usr/bin/convert", "convert", pgm, gif)
		b.Read(cv, pgm, MB)
		b.Compute(cv, 3*time.Second)
		b.Write(cv, gif, 700*1024/2)
		b.Write(cv, gif, 700*1024/2)
		b.Close(cv, gif)
		b.Exit(cv)
	}
	return Workload{Name: "challenge", Trace: b.Trace(), FinalPrefix: "mnt/out/", Program: "align_warp"}
}

// ByName returns the named workload generated with rnd.
func ByName(name string, rnd *sim.Rand) (Workload, error) {
	switch name {
	case "nightly":
		return Nightly(rnd), nil
	case "blast":
		return Blast(rnd), nil
	case "challenge":
		return Challenge(rnd), nil
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// All returns the three workloads in the paper's presentation order.
func All(rnd *sim.Rand) []Workload {
	return []Workload{Blast(rnd), Nightly(rnd), Challenge(rnd)}
}

// MountStats summarizes a workload the way the paper characterizes it.
type MountStats struct {
	MountOps   int
	MountBytes int64
	FinalFiles int
	FinalBytes int64
}

// Stats computes the mount-level characteristics of the workload.
func (w Workload) Stats() MountStats {
	var s MountStats
	finals := make(map[string]int64)
	for _, e := range w.Trace.Events {
		onMount := len(e.Path) >= 4 && e.Path[:4] == "mnt/"
		switch e.Kind {
		case trace.Read, trace.Write, trace.Close, trace.Flush, trace.Unlink, trace.MkPipe:
			if onMount {
				s.MountOps++
			}
		}
		if e.Kind == trace.Write && onMount {
			s.MountBytes += e.Bytes
			if len(e.Path) >= len(w.FinalPrefix) && e.Path[:len(w.FinalPrefix)] == w.FinalPrefix {
				finals[e.Path] += e.Bytes
			}
		}
	}
	s.FinalFiles = len(finals)
	for _, sz := range finals {
		s.FinalBytes += sz
	}
	return s
}
