package workload

import (
	"fmt"
	"strings"

	"passcloud/internal/prov"
	"passcloud/internal/sim"
	"passcloud/internal/uuid"
)

// CompileProvenance generates a Linux-compile-shaped provenance stream of
// approximately targetBytes encoded size, for the Table-2 service upload
// microbenchmark ("the first 50MB of provenance generated during a Linux
// compile"). The stream is topologically ordered (headers and sources
// first, then the gcc process that read them, then its object file) and its
// record mix matches a compile: processes with long command lines and
// environments — a few large enough to exceed the database's 1 KB value
// limit — and object files with many input references.
func CompileProvenance(rnd *sim.Rand, targetBytes int) []prov.Bundle {
	var (
		out   []prov.Bundle
		total int
		unit  int
	)
	env := []string{
		"PATH=/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin:/usr/x86_64-linux-gnu/bin",
		"HOME=/root",
		"LANG=C",
		"SHELL=/bin/bash",
		"MAKEFLAGS=-j2 --no-print-directory",
		"KBUILD_OUTPUT=/usr/src/linux-2.6.23.17/build",
		"KBUILD_BUILD_HOST=pass-build-01.eecs.harvard.edu",
		"KBUILD_BUILD_USER=kiran",
		"ARCH=x86_64",
		"CROSS_COMPILE=",
		"CC=gcc -m64 -mcmodel=kernel -fno-builtin-sprintf -fno-builtin-log2",
		"LD=ld -m elf_x86_64 --emit-relocs --build-id=none",
		"TERM=xterm-256color",
		"LOGNAME=root",
		"OLDPWD=/usr/src/linux-2.6.23.17/drivers",
		"PWD=/usr/src/linux-2.6.23.17",
		"LS_COLORS=rs=0:di=01;34:ln=01;36:mh=00:pi=40;33:so=01;35:do=01;35",
		"SSH_CONNECTION=140.247.60.12 52422 140.247.60.30 22",
		"LD_LIBRARY_PATH=/usr/local/lib:/usr/lib64:/lib64",
		"MANPATH=/usr/local/share/man:/usr/share/man",
	}
	newRef := func() prov.Ref {
		return prov.Ref{UUID: uuid.New(rnd), Version: 1}
	}
	add := func(b prov.Bundle) {
		out = append(out, b)
		total += len(prov.AppendBundle(nil, b)) // actual encoded size
	}
	// Shared headers every compilation unit includes.
	var headers []prov.Ref
	for i := 0; i < 24; i++ {
		h := prov.Bundle{
			Ref: newRef(), Type: prov.File, Name: fmt.Sprintf("include/linux/h%02d.h", i),
			Records: []prov.Record{
				{Attr: prov.AttrType, Value: "file"},
				{Attr: prov.AttrName, Value: fmt.Sprintf("include/linux/h%02d.h", i)},
			},
		}
		headers = append(headers, h.Ref)
		add(h)
	}
	for total < targetBytes {
		srcName := fmt.Sprintf("drivers/subsys%02d/unit%06d.c", unit%37, unit)
		src := prov.Bundle{
			Ref: newRef(), Type: prov.File, Name: srcName,
			Records: []prov.Record{
				{Attr: prov.AttrType, Value: "file"},
				{Attr: prov.AttrName, Value: srcName},
				{Attr: "st_size", Value: fmt.Sprint(2048 + rnd.Intn(64<<10))},
				{Attr: "st_mode", Value: "0644"},
			},
		}
		add(src)

		gcc := prov.Bundle{Ref: newRef(), Type: prov.Process, Name: "gcc"}
		gcc.Records = append(gcc.Records,
			prov.Record{Attr: prov.AttrType, Value: "proc"},
			prov.Record{Attr: prov.AttrName, Value: "gcc"},
			prov.Record{Attr: prov.AttrPID, Value: fmt.Sprint(2000 + unit)},
			prov.Record{Attr: prov.AttrStartTime, Value: fmt.Sprintf("%dms", 17*unit)},
		)
		argv := []string{
			"gcc", "-Wp,-MD,.tmp.d", "-nostdinc", "-isystem", "/usr/lib/gcc/x86_64/4.1.2/include",
			"-D__KERNEL__", "-Iinclude", "-Wall", "-Wundef", "-Wstrict-prototypes",
			"-fno-strict-aliasing", "-fno-common", "-Os", "-m64", "-mno-red-zone",
			"-c", srcName, "-o", fmt.Sprintf("drivers/subsys%02d/unit%06d.o", unit%37, unit),
		}
		for _, a := range argv {
			gcc.Records = append(gcc.Records, prov.Record{Attr: prov.AttrArgv, Value: a})
		}
		for _, e := range env {
			gcc.Records = append(gcc.Records, prov.Record{Attr: prov.AttrEnv, Value: e})
		}
		// The occasional process drags a pathological environment variable
		// past the 1 KB limit (spill path exercise).
		if unit%2000 == 0 {
			gcc.Records = append(gcc.Records, prov.Record{
				Attr: prov.AttrEnv, Value: "KBUILD_EXTRA_FLAGS=" + strings.Repeat("-f", 700),
			})
		}
		gcc.Records = append(gcc.Records, prov.Record{Attr: prov.AttrInput, Xref: src.Ref})
		for h := 0; h < 9; h++ {
			gcc.Records = append(gcc.Records, prov.Record{
				Attr: prov.AttrInput, Xref: headers[(unit+h)%len(headers)],
			})
		}
		add(gcc)

		objName := fmt.Sprintf("drivers/subsys%02d/unit%06d.o", unit%37, unit)
		obj := prov.Bundle{
			Ref: newRef(), Type: prov.File, Name: objName,
			Records: []prov.Record{
				{Attr: prov.AttrType, Value: "file"},
				{Attr: prov.AttrName, Value: objName},
				{Attr: "st_size", Value: fmt.Sprint(4096 + rnd.Intn(128<<10))},
				{Attr: "st_mode", Value: "0644"},
				{Attr: prov.AttrInput, Xref: gcc.Ref},
			},
		}
		add(obj)
		unit++
	}
	return out
}

// UnitsOf reports how many compilation units (source/gcc/object triples) a
// compile stream holds; the Table-2 S3 upload groups provenance per unit.
func UnitsOf(bundles []prov.Bundle) int {
	n := 0
	for _, b := range bundles {
		if b.Type == prov.Process {
			n++
		}
	}
	return n
}
