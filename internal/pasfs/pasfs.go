// Package pasfs implements PA-S3fs, the provenance-aware user-level file
// system interface of §4.2. It sits between PASS (the collector) and a
// storage protocol: application system calls flow through the collector,
// data accumulates in a local cache, and on close or flush the file's data
// and cached provenance are handed to the protocol — exactly the
// architecture of Figure 1.
//
// The non-provenance baseline is the same layer with collection disabled
// (plain S3fs on a vanilla kernel).
package pasfs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
	"passcloud/internal/trace"
)

// MountPrefix marks the paths served by the cloud-backed mount; events on
// other paths are local-disk activity (still observed by PASS, so local
// files appear as ancestors, but they move no cloud data).
const MountPrefix = "mnt/"

// OnMount reports whether a path lives on the PA-S3fs mount.
func OnMount(path string) bool { return strings.HasPrefix(path, MountPrefix) }

// Config tunes the client layer.
type Config struct {
	// Collect enables PASS provenance collection (false = plain S3fs on a
	// vanilla kernel: the baseline).
	Collect bool
	// AsyncCommits uploads on close/flush in the background, as the
	// paper's measured implementation does; false blocks each close until
	// its upload finishes.
	AsyncCommits bool
	// MaxInflight bounds concurrent in-flight commits (async mode).
	MaxInflight int
}

// DefaultConfig collects provenance and uploads asynchronously.
func DefaultConfig() Config {
	return Config{Collect: true, AsyncCommits: true, MaxInflight: 8}
}

// FS is one mounted PA-S3fs instance.
type FS struct {
	env   *sim.Env
	proto core.Protocol
	col   *pass.Collector
	cfg   Config

	mu       sync.Mutex
	inflight map[string]chan struct{} // per-path commit completion
	errs     []error
	wg       sync.WaitGroup
	sem      chan struct{}

	// sizes is the local data cache's view of each mount file's length;
	// it exists independently of the collector so the plain-S3fs baseline
	// uploads real payloads too.
	sizes map[string]int64

	// debt accumulates client-side time (per-op costs and compute bursts)
	// and is slept in coarse chunks: a workload issues tens of thousands
	// of sub-millisecond operations, and sleeping each individually would
	// pile live-mode timer noise onto the sequential path.
	debt time.Duration

	mountOps int64 // fs-level operations on the mount (the paper's op counts)
}

// debtChunk is the granularity at which accumulated client time is slept.
const debtChunk = time.Second

// charge adds client time to the debt and sleeps any whole chunks.
func (fs *FS) charge(d time.Duration) {
	fs.debt += d
	if fs.debt >= debtChunk {
		fs.env.Compute(fs.debt)
		fs.debt = 0
	}
}

// settleDebt sleeps whatever residual client time remains.
func (fs *FS) settleDebt() {
	if fs.debt > 0 {
		fs.env.Compute(fs.debt)
		fs.debt = 0
	}
}

// New mounts a client over proto. The collector may be nil when cfg.Collect
// is false.
func New(env *sim.Env, proto core.Protocol, col *pass.Collector, cfg Config) *FS {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 8
	}
	return &FS{
		env:      env,
		proto:    proto,
		col:      col,
		cfg:      cfg,
		inflight: make(map[string]chan struct{}),
		sem:      make(chan struct{}, cfg.MaxInflight),
		sizes:    make(map[string]int64),
	}
}

// Collector returns the PASS collector (nil for the baseline).
func (fs *FS) Collector() *pass.Collector { return fs.col }

// Protocol returns the storage protocol in use.
func (fs *FS) Protocol() core.Protocol { return fs.proto }

// MountOps returns the number of fs-level operations that hit the mount.
func (fs *FS) MountOps() int64 { return fs.mountOps }

// Apply feeds one trace event through the client: the collector sees every
// event; mount-path closes and flushes trigger protocol commits.
func (fs *FS) Apply(ev trace.Event) error {
	switch ev.Kind {
	case trace.Compute:
		fs.charge(ev.Dur)
		return nil
	case trace.Exec, trace.Fork, trace.Exit:
		// Process bookkeeping costs nothing at the fs layer.
	case trace.Read, trace.Write, trace.Close, trace.Flush, trace.Unlink, trace.MkPipe:
		if OnMount(ev.Path) {
			fs.mountOps++
			fs.charge(fs.env.ClientOpCost(int(ev.Bytes)))
			if ev.Kind == trace.Write {
				fs.sizes[ev.Path] += ev.Bytes
			}
			if ev.Kind == trace.Unlink {
				delete(fs.sizes, ev.Path)
			}
		}
	}
	if fs.cfg.Collect && fs.col != nil {
		if err := fs.col.Apply(ev); err != nil {
			return err
		}
	}
	switch ev.Kind {
	case trace.Close, trace.Flush:
		if OnMount(ev.Path) {
			return fs.commit(ev.Path)
		}
	case trace.Unlink:
		if OnMount(ev.Path) {
			// Serialize behind any in-flight commit of the same path so
			// the delete is not overtaken by an older upload.
			fs.mu.Lock()
			prev := fs.inflight[ev.Path]
			fs.mu.Unlock()
			if prev != nil {
				<-prev
			}
			return fs.proto.Delete(ev.Path)
		}
	}
	return nil
}

// Run replays a whole trace and waits for in-flight commits to drain.
func (fs *FS) Run(tr trace.Trace) error {
	for _, ev := range tr.Events {
		if err := fs.Apply(ev); err != nil {
			return err
		}
	}
	return fs.Drain()
}

// commit extracts the file's pending provenance (its new versions plus the
// unrecorded ancestor closure) and hands data+provenance to the protocol.
func (fs *FS) commit(path string) error {
	obj := core.FileObject{Path: path, Size: fs.sizes[path]}
	var bundles []prov.Bundle
	if fs.cfg.Collect && fs.col != nil {
		ref, ok := fs.col.FileRef(path)
		if !ok {
			return fmt.Errorf("pasfs: close of untracked file %s", path)
		}
		obj.Ref = ref
		// Ancestry digest for reader-side Merkle verification (§4.3.1).
		obj.Digest = core.ClosureRoot(fs.col.FullClosureFor(path)).String()
		bundles = fs.col.PendingFor(path)
		// Mark optimistically so a later close does not re-send the same
		// ancestors; a failed upload surfaces through Drain.
		for _, b := range bundles {
			fs.col.MarkRecorded(b.Ref)
		}
	}
	if !fs.cfg.AsyncCommits {
		return fs.proto.Commit(obj, bundles)
	}

	// Async: wait for a previous in-flight commit of the same path (write
	// ordering per object), then upload in the background.
	fs.mu.Lock()
	prev := fs.inflight[path]
	done := make(chan struct{})
	fs.inflight[path] = done
	fs.mu.Unlock()

	fs.wg.Add(1)
	fs.sem <- struct{}{}
	go func() {
		defer fs.wg.Done()
		defer close(done)
		defer func() { <-fs.sem }()
		if prev != nil {
			<-prev
		}
		if err := fs.proto.Commit(obj, bundles); err != nil {
			fs.mu.Lock()
			fs.errs = append(fs.errs, err)
			fs.mu.Unlock()
		}
	}()
	return nil
}

// Drain waits for all in-flight commits and returns the first upload error.
func (fs *FS) Drain() error {
	fs.settleDebt()
	fs.wg.Wait()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if len(fs.errs) > 0 {
		return errors.Join(fs.errs...)
	}
	return nil
}
