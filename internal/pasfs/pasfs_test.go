package pasfs

import (
	"testing"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/sim"
	"passcloud/internal/trace"
)

// pipeline builds the canonical two-stage trace.
func pipeline() trace.Trace {
	b := trace.NewBuilder()
	p1 := b.Spawn(0, "/bin/stage1", "stage1")
	b.Read(p1, "raw", 4096).Compute(p1, time.Second)
	b.Write(p1, "mnt/mid", 2048).Close(p1, "mnt/mid")
	p2 := b.Spawn(p1, "/bin/stage2", "stage2")
	b.Read(p2, "mnt/mid", 2048).Write(p2, "mnt/out", 1024).Close(p2, "mnt/out")
	return b.Trace()
}

func newFS(t *testing.T, cfg Config) (*FS, *core.Deployment) {
	t.Helper()
	env := sim.NewEnv(sim.DefaultConfig())
	dep := core.NewDeployment(env)
	proto := core.NewP2(dep, core.Options{})
	var col *pass.Collector
	if cfg.Collect {
		col = pass.New(env.Rand(), nil)
	}
	return New(env, proto, col, cfg), dep
}

func TestRunCommitsMountFiles(t *testing.T) {
	fs, dep := newFS(t, DefaultConfig())
	if err := fs.Run(pipeline()); err != nil {
		t.Fatal(err)
	}
	dep.Settle()
	for _, path := range []string{"mnt/mid", "mnt/out"} {
		o, err := fs.Protocol().Fetch(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if o.Size == 0 {
			t.Fatalf("%s uploaded empty", path)
		}
	}
	// Provenance for the whole pipeline must be queryable.
	outRef, _ := fs.Collector().FileRef("mnt/out")
	walk, err := core.CheckCausalOrdering(dep, core.BackendSDB, outRef)
	if err != nil {
		t.Fatal(err)
	}
	if !walk.Ordered() {
		t.Fatalf("dangling: %v", walk.Dangling)
	}
}

func TestSyncVsAsyncSameState(t *testing.T) {
	for _, async := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.AsyncCommits = async
		fs, dep := newFS(t, cfg)
		if err := fs.Run(pipeline()); err != nil {
			t.Fatal(err)
		}
		dep.Settle()
		if _, err := fs.Protocol().Fetch("mnt/out"); err != nil {
			t.Fatalf("async=%v: %v", async, err)
		}
	}
}

func TestBaselineDoesNotCollect(t *testing.T) {
	cfg := Config{Collect: false, AsyncCommits: false}
	fs, dep := newFS(t, cfg)
	if err := fs.Run(pipeline()); err == nil {
		// The P2 protocol with no collector commits FileObjects with no
		// ref — acceptable for the baseline path; assert no items landed.
		_ = fs
	}
	dep.Settle()
	if dep.DB.ItemCount() != 0 {
		t.Fatal("baseline wrote provenance items")
	}
}

func TestMountOpsCountsOnlyMountPaths(t *testing.T) {
	fs, _ := newFS(t, DefaultConfig())
	if err := fs.Run(pipeline()); err != nil {
		t.Fatal(err)
	}
	// mnt ops: write+close mid, read mid, write+close out = 5.
	if got := fs.MountOps(); got != 5 {
		t.Fatalf("mount ops = %d, want 5", got)
	}
}

func TestUnlinkDeletesFromCloudButKeepsProvenance(t *testing.T) {
	fs, dep := newFS(t, DefaultConfig())
	tr := pipeline()
	tr.Events = append(tr.Events, trace.Event{Kind: trace.Unlink, PID: 101, Path: "mnt/out"})
	if err := fs.Run(tr); err != nil {
		t.Fatal(err)
	}
	dep.Settle()
	if _, err := fs.Protocol().Fetch("mnt/out"); err == nil {
		t.Fatal("unlinked file still in cloud")
	}
	if dep.DB.ItemCount() == 0 {
		t.Fatal("provenance vanished with unlink")
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	fs, dep := newFS(t, DefaultConfig())
	before := dep.Env.Now()
	fs.Apply(trace.Event{Kind: trace.Compute, PID: 1, Dur: 5 * time.Second})
	if got := dep.Env.Now() - before; got < 5*time.Second {
		t.Fatalf("compute advanced %v", got)
	}
}
