package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/prov"
	"passcloud/internal/query"
	"passcloud/internal/sim"
	"passcloud/internal/uuid"
)

// The coherent-reads benchmark: a continuously-ingesting commit+query
// workload — the monitoring pattern where lineage dashboards re-ask the
// same questions while P3 keeps committing new provenance underneath them.
// Four reader strategies run the identical query set over the identical
// fabric after every ingest round:
//
//	uncached    no cache: every round re-bills the full walk (the baseline
//	            every strategy must match byte for byte);
//	subscribed  a warm cache attached to the commit bus: each committed
//	            transaction invalidates exactly the observations it touched,
//	            so rounds re-read only what actually changed;
//	flush       a warm cache flushed before each round — the only correct
//	            cache strategy available before commit notices existed;
//	stale       a warm cache neither subscribed nor flushed: the negative
//	            control, expected to serve pre-ingest observations and
//	            diverge.
//
// The run also measures conjunctive filter pushdown over the final corpus:
// find- and Q3/Q4-shaped filtered specs executed with pushdown on and off
// must stream byte-identical results while examining strictly fewer items.

// CoherentReadsConfig parameterizes one coherent-reads run.
type CoherentReadsConfig struct {
	Seed         int64
	Rounds       int // ingest+query rounds
	TxnsPerRound int // worker-chain transactions committed per round
	Depth        int // file-version chain length per transaction
	Workers      int // P3 commit-daemon pool and query fan-out
	DBShards     int // fabric width
}

// CoherentModeStats is one reader strategy's accumulated query-phase cost.
type CoherentModeStats struct {
	Mode          string  `json:"mode"`
	SimSeconds    float64 `json:"sim_seconds"` // query phases only
	Selects       int64   `json:"selects"`
	ItemsExamined int64   `json:"items_examined"`
	Results       int     `json:"results"`
	Digest        string  `json:"digest"`

	CacheHits       int64 `json:"cache_hits,omitempty"`
	CacheMisses     int64 `json:"cache_misses,omitempty"`
	CoherenceHits   int64 `json:"coherence_hits,omitempty"`
	Invalidations   int64 `json:"invalidations,omitempty"`
	StaleServes     int64 `json:"stale_serves,omitempty"`
	SubscriptionLag int64 `json:"subscription_lag,omitempty"`
}

// PushdownCase compares one filtered spec with pushdown on and off.
type PushdownCase struct {
	Name        string `json:"name"`
	Plan        string `json:"plan"` // Describe with pushdown on
	ExaminedOn  int64  `json:"items_examined_on"`
	ExaminedOff int64  `json:"items_examined_off"`
	SelectsOn   int64  `json:"selects_on"`
	SelectsOff  int64  `json:"selects_off"`
	Identical   bool   `json:"results_identical"`
}

// CoherentReadsRun is the measured outcome of one configuration.
type CoherentReadsRun struct {
	Rounds       int `json:"rounds"`
	TxnsPerRound int `json:"txns_per_round"`
	Depth        int `json:"depth"`
	Events       int `json:"events"` // bundles committed

	Modes    map[string]CoherentModeStats `json:"modes"`
	Pushdown []PushdownCase               `json:"pushdown"`

	CommitNotices int64   `json:"commit_notices"` // published on the bus
	WallSeconds   float64 `json:"wall_seconds"`
}

// CostRatio returns how much cheaper (in simulated read seconds) mode is
// than the uncached baseline.
func (r CoherentReadsRun) CostRatio(mode string) float64 {
	m, u := r.Modes[mode], r.Modes["uncached"]
	if m.SimSeconds == 0 {
		return 0
	}
	return u.SimSeconds / m.SimSeconds
}

// coherentTxn is one committed transaction of the ingest workload.
type coherentTxn struct {
	obj     core.FileObject
	bundles []prov.Bundle
}

// coherentRound builds round r of the ingest stream: a new version of the
// long-lived "ingestd" process (so version sets keep growing under the
// readers) plus TxnsPerRound worker chains, each a "workerprog" process
// reading from ingestd's first version and writing a Depth-version file
// chain. Every bundle carries a round attribute, giving the pushdown cases
// a selective indexed term.
func coherentRound(rnd *sim.Rand, c CoherentReadsConfig, r int, rootUUID uuid.UUID) []coherentTxn {
	tag := fmt.Sprintf("r%03d", r)
	rootV1 := prov.Ref{UUID: rootUUID, Version: 1}
	rootRef := prov.Ref{UUID: rootUUID, Version: r + 1}
	rootRecords := []prov.Record{
		{Attr: prov.AttrType, Value: "proc"},
		{Attr: prov.AttrName, Value: "ingestd"},
		{Attr: "round", Value: tag},
	}
	if r > 0 {
		rootRecords = append(rootRecords, prov.Record{
			Attr: prov.AttrPrevVer, Xref: prov.Ref{UUID: rootUUID, Version: r},
		})
	}
	out := []coherentTxn{{
		obj: core.FileObject{Path: "mnt/daemon/ingestd", Size: 512, Ref: rootRef},
		bundles: []prov.Bundle{
			{Ref: rootRef, Type: prov.Process, Name: "ingestd", Records: rootRecords},
		},
	}}
	for t := 0; t < c.TxnsPerRound; t++ {
		workerRef := prov.Ref{UUID: uuid.New(rnd), Version: 1}
		path := fmt.Sprintf("mnt/chain/%s/t%04d", tag, t)
		bundles := []prov.Bundle{{
			Ref: workerRef, Type: prov.Process, Name: "workerprog",
			Records: []prov.Record{
				{Attr: prov.AttrType, Value: "proc"},
				{Attr: prov.AttrName, Value: "workerprog"},
				{Attr: prov.AttrInput, Xref: rootV1},
				{Attr: "round", Value: tag},
			},
		}}
		fileUUID := uuid.New(rnd)
		last := workerRef
		for v := 1; v <= c.Depth; v++ {
			ref := prov.Ref{UUID: fileUUID, Version: v}
			records := []prov.Record{
				{Attr: prov.AttrType, Value: "file"},
				{Attr: prov.AttrName, Value: path},
				{Attr: prov.AttrInput, Xref: last},
				{Attr: "round", Value: tag},
			}
			if v > 1 {
				records = append(records, prov.Record{
					Attr: prov.AttrPrevVer, Xref: prov.Ref{UUID: fileUUID, Version: v - 1},
				})
			}
			bundles = append(bundles, prov.Bundle{Ref: ref, Type: prov.File, Name: path, Records: records})
			last = ref
		}
		out = append(out, coherentTxn{
			obj:     core.FileObject{Path: path, Size: 2048, Ref: last},
			bundles: bundles,
		})
	}
	return out
}

// CoherentReads runs the continuous-ingest workload and the pushdown
// comparison on one deployment, so every reader strategy and both pushdown
// modes see exactly the same committed corpus.
func CoherentReads(c CoherentReadsConfig) (CoherentReadsRun, error) {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.DBShards <= 0 {
		c.DBShards = 2
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = c.Seed
	cfg.Consistency = sim.Strict // isolate read cost from staleness retries
	env := sim.NewEnv(cfg)
	dep := core.NewShardedDeployment(env, core.Topology{WALShards: c.DBShards, DBShards: c.DBShards})
	p3 := core.NewP3(dep, core.Options{CommitWorkers: c.Workers})
	rnd := sim.NewRand(c.Seed)
	rootUUID := uuid.New(rnd)

	run := CoherentReadsRun{
		Rounds: c.Rounds, TxnsPerRound: c.TxnsPerRound, Depth: c.Depth,
		Modes: make(map[string]CoherentModeStats, 4),
	}
	wall0 := time.Now()

	// The reader strategies; every mode owns an engine, the cached ones own
	// a cache each, and the subscribed one attaches to the commit bus before
	// the first commit.
	type reader struct {
		mode   string
		e      *query.Engine
		digest hash.Hash
		stats  CoherentModeStats
	}
	var readers []*reader
	addReader := func(mode string, cached bool) *reader {
		e := query.New(dep, core.BackendSDB)
		if cached {
			e.SetCache(query.NewCache(0))
		}
		r := &reader{mode: mode, e: e, digest: sha256.New(), stats: CoherentModeStats{Mode: mode}}
		readers = append(readers, r)
		return r
	}
	addReader("uncached", false)
	sub := addReader("subscribed", true)
	if err := sub.e.Subscribe(); err != nil {
		return run, err
	}
	flush := addReader("flush", true)
	addReader("stale", true)

	var probeUUID uuid.UUID // round-0 chain: its version set never grows again
	for r := 0; r < c.Rounds; r++ {
		txns := coherentRound(rnd, c, r, rootUUID)
		if r == 0 {
			probeUUID = txns[1].bundles[1].Ref.UUID
		}
		for i := range txns {
			if err := p3.Commit(txns[i].obj, txns[i].bundles); err != nil {
				return run, fmt.Errorf("bench: round %d commit %d: %w", r, i, err)
			}
			run.Events += len(txns[i].bundles)
		}
		if err := p3.Settle(); err != nil {
			return run, fmt.Errorf("bench: round %d settle: %w", r, err)
		}
		dep.Settle()

		specs := []query.Spec{
			// The dashboard walk: everything ever derived from ingestd.
			{Roots: query.Roots{Attrs: []query.AttrMatch{
				{Attr: prov.AttrName, Value: "ingestd"}, {Attr: prov.AttrType, Value: "proc"},
			}}, Direction: query.Descendants, Workers: c.Workers},
			// The growing version set of the long-lived process.
			{Roots: query.Roots{UUIDs: []uuid.UUID{rootUUID}}, Direction: query.Versions,
				Project: query.ProjectBundles},
			// The growing worker roster (attr-observation invalidation).
			{Roots: query.Roots{Attrs: []query.AttrMatch{
				{Attr: prov.AttrName, Value: "workerprog"}, {Attr: prov.AttrType, Value: "proc"},
			}}, Direction: query.Self},
			// A settled round-0 chain: the pure coherent-hit path.
			{Roots: query.Roots{UUIDs: []uuid.UUID{probeUUID}}, Direction: query.Versions,
				Project: query.ProjectBundles},
		}
		for _, rd := range readers {
			if rd == flush {
				rd.e.Cache().Flush()
			}
			u0 := env.Meter().Usage()
			t0 := env.Now()
			for si, spec := range specs {
				for res, err := range rd.e.Run(spec) {
					if err != nil {
						return run, fmt.Errorf("bench: round %d mode %s spec %d: %w", r, rd.mode, si, err)
					}
					rd.stats.Results++
					fmt.Fprintf(rd.digest, "%d/%d/%s@%d\n", r, si, res.Ref, res.Depth)
					if res.Bundle != nil {
						rd.digest.Write(prov.EncodeBundles([]prov.Bundle{*res.Bundle}))
					}
				}
			}
			u1 := env.Meter().Usage()
			rd.stats.SimSeconds += (env.Now() - t0).Seconds()
			rd.stats.Selects += u1.OpsByKind["sdb.Select"] - u0.OpsByKind["sdb.Select"]
			rd.stats.ItemsExamined += u1.ItemsExamined - u0.ItemsExamined
		}
	}

	for _, rd := range readers {
		if cs := rd.e.Cache(); cs != nil {
			s := cs.Stats()
			rd.stats.CacheHits, rd.stats.CacheMisses = s.Hits, s.Misses
			rd.stats.CoherenceHits, rd.stats.Invalidations = s.CoherenceHits, s.Invalidations
			rd.stats.StaleServes, rd.stats.SubscriptionLag = s.StaleServes, s.SubscriptionLag
		}
		rd.stats.Digest = hex.EncodeToString(rd.digest.Sum(nil))
		run.Modes[rd.mode] = rd.stats
	}
	run.CommitNotices = env.Meter().Usage().CommitNotices

	// Pushdown comparison over the final corpus: the same filtered spec with
	// lowering on and off must stream identical bytes while the on-mode
	// SELECTs examine strictly fewer candidates.
	probePath := fmt.Sprintf("mnt/chain/r%03d/t%04d", 0, 0)
	cases := []struct {
		name string
		spec query.Spec
	}{
		{"find-all-procs", query.Spec{
			Direction: query.All, Filter: query.TypeIs(prov.Process),
		}},
		{"q3-named-output", query.Spec{
			Roots: query.Roots{Attrs: []query.AttrMatch{
				{Attr: prov.AttrName, Value: "workerprog"}, {Attr: prov.AttrType, Value: "proc"},
			}},
			Direction: query.Descendants, MaxDepth: 1,
			Filter:  query.And(query.TypeIs(prov.File), query.NameIs(probePath)),
			Workers: c.Workers,
		}},
		{"q4-depth-bounded", query.Spec{
			Roots: query.Roots{Attrs: []query.AttrMatch{
				{Attr: prov.AttrName, Value: "ingestd"}, {Attr: prov.AttrType, Value: "proc"},
			}},
			Direction: query.Descendants, MaxDepth: 3,
			Filter:  query.NameIs(probePath),
			Workers: c.Workers,
		}},
	}
	pe := query.New(dep, core.BackendSDB)
	runCase := func(spec query.Spec, on bool) (string, int64, int64, error) {
		pe.SetPushdown(on)
		u0 := env.Meter().Usage()
		h := sha256.New()
		for res, err := range pe.Run(spec) {
			if err != nil {
				return "", 0, 0, err
			}
			fmt.Fprintf(h, "%s@%d", res.Ref, res.Depth)
			if res.Bundle != nil {
				h.Write(prov.EncodeBundles([]prov.Bundle{*res.Bundle}))
			}
			h.Write([]byte{'\n'})
		}
		u1 := env.Meter().Usage()
		return hex.EncodeToString(h.Sum(nil)),
			u1.ItemsExamined - u0.ItemsExamined,
			u1.OpsByKind["sdb.Select"] - u0.OpsByKind["sdb.Select"], nil
	}
	for _, pc := range cases {
		pe.SetPushdown(true)
		out := PushdownCase{Name: pc.name, Plan: pe.Describe(pc.spec)}
		digOn, exOn, selOn, err := runCase(pc.spec, true)
		if err != nil {
			return run, fmt.Errorf("bench: pushdown case %s (on): %w", pc.name, err)
		}
		digOff, exOff, selOff, err := runCase(pc.spec, false)
		if err != nil {
			return run, fmt.Errorf("bench: pushdown case %s (off): %w", pc.name, err)
		}
		out.ExaminedOn, out.SelectsOn = exOn, selOn
		out.ExaminedOff, out.SelectsOff = exOff, selOff
		out.Identical = digOn == digOff
		run.Pushdown = append(run.Pushdown, out)
	}

	run.WallSeconds = time.Since(wall0).Seconds()
	return run, nil
}
