package bench

import (
	"errors"
	"fmt"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/sim"
	"passcloud/internal/trace"
	"passcloud/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out.

// Table1 runs the property probes for every configuration — the empirical
// regeneration of the paper's Table 1 (plus the persistence property).
func Table1(seed int64) ([]core.PropertyReport, error) {
	var rows []core.PropertyReport
	for _, f := range core.Factories() {
		rep, err := core.ProbeProperties(f, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rep)
	}
	return rows, nil
}

// ConnSweepPoint is one point of the §5.1 connection-scaling ablation.
type ConnSweepPoint struct {
	Service string
	Conns   int
	Elapsed time.Duration
	// Throughput is MB/s of provenance uploaded at this connection count.
	Throughput float64
}

// ConnSweep uploads the Table-2 provenance stream to each service at
// increasing connection counts, reproducing the observation that S3 and SQS
// keep scaling through 150 connections while SimpleDB peaks around 40.
func ConnSweep(seed int64, scale float64, conns []int) ([]ConnSweepPoint, error) {
	if len(conns) == 0 {
		conns = []int{10, 40, 150}
	}
	var points []ConnSweepPoint
	for _, c := range conns {
		rows, err := Table2(seed, scale, c, c, c)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			points = append(points, ConnSweepPoint{
				Service:    r.Service,
				Conns:      c,
				Elapsed:    r.Elapsed,
				Throughput: float64(Table2Size) / (1 << 20) / r.Elapsed.Seconds(),
			})
		}
	}
	return points, nil
}

// ChunkSweepPoint is one point of the P3 WAL chunk-size ablation.
type ChunkSweepPoint struct {
	ChunkBytes int
	Elapsed    time.Duration
	Messages   int64
}

// ChunkSweep logs the same provenance through P3 with different WAL chunk
// sizes. Smaller chunks mean more messages (each paying the per-request
// latency); 8 KB is the service's ceiling and the best point.
func ChunkSweep(seed int64, scale float64, sizes []int) ([]ChunkSweepPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{1 << 10, 2 << 10, 4 << 10, core.DefaultChunkSize}
	}
	bundles := workload.CompileProvenance(sim.NewRand(seed), 2<<20)
	var points []ChunkSweepPoint
	for _, size := range sizes {
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		cfg.TimeScale = scale
		if cfg.TimeScale == 0 {
			cfg.TimeScale = DefaultScale
		}
		env := sim.NewEnv(cfg)
		dep := core.NewDeployment(env)
		p3 := core.NewP3(dep, core.Options{})
		p3.SetChunkSize(size)
		obj := core.FileObject{Path: "mnt/blob", Size: 1 << 20, Ref: bundles[len(bundles)-1].Ref}
		start := env.Now()
		if err := p3.Commit(obj, bundles); err != nil {
			return nil, err
		}
		points = append(points, ChunkSweepPoint{
			ChunkBytes: size,
			Elapsed:    env.Now() - start,
			// No daemon ran yet, so the WAL still holds every logged
			// message (the sends themselves are batched calls).
			Messages: int64(dep.WAL.Len()),
		})
	}
	return points, nil
}

// BatchSweepPoint is one point of the BatchPutAttributes size ablation.
type BatchSweepPoint struct {
	BatchSize int
	Elapsed   time.Duration
	Calls     int64
}

// BatchSweep stores the same items through P2-style batch puts with
// different batch sizes; 25 (the service maximum) amortizes the expensive
// per-call indexing best.
func BatchSweep(seed int64, scale float64, sizes []int) ([]BatchSweepPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{1, 5, 10, 25}
	}
	bundles := workload.CompileProvenance(sim.NewRand(seed), 1<<20)
	var points []BatchSweepPoint
	for _, size := range sizes {
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		cfg.TimeScale = scale
		if cfg.TimeScale == 0 {
			cfg.TimeScale = DefaultScale
		}
		env := sim.NewEnv(cfg)
		dep := core.NewDeployment(env)
		reqs, err := core.ItemsForBundles(dep.Store, bundles)
		if err != nil {
			return nil, err
		}
		start := env.Now()
		sem := make(chan struct{}, 40)
		errs := make(chan error, len(reqs)/size+1)
		calls := 0
		for s := 0; s < len(reqs); s += size {
			e := s + size
			if e > len(reqs) {
				e = len(reqs)
			}
			batch := reqs[s:e]
			calls++
			sem <- struct{}{}
			go func() {
				defer func() { <-sem }()
				errs <- dep.DB.BatchPutAttributes(batch)
			}()
		}
		var first error
		for i := 0; i < calls; i++ {
			if err := <-errs; err != nil && first == nil {
				first = err
			}
		}
		if first != nil {
			return nil, first
		}
		points = append(points, BatchSweepPoint{
			BatchSize: size,
			Elapsed:   env.Now() - start,
			Calls:     env.Meter().Usage().OpsByKind["sdb.BatchPutAttributes"],
		})
	}
	return points, nil
}

// ConsistencyPoint compares detection behaviour under eventual vs strict
// consistency: how many immediate post-commit coupling checks transiently
// fail before the services settle.
type ConsistencyPoint struct {
	Mode           sim.Consistency
	Checks         int
	TransientFails int
}

// ConsistencySweep commits objects through P2 and immediately verifies
// coupling: eventual consistency produces transient detection failures
// (which VerifiedFetch retries through); strict consistency produces none.
func ConsistencySweep(seed int64, checks int) ([]ConsistencyPoint, error) {
	if checks <= 0 {
		checks = 40
	}
	var points []ConsistencyPoint
	for _, mode := range []sim.Consistency{sim.Eventual, sim.Strict} {
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		cfg.Consistency = mode
		env := sim.NewEnv(cfg)
		dep := core.NewDeployment(env)
		p := core.NewP2(dep, core.Options{})
		col := pass.New(env.Rand(), nil)
		tb := trace.NewBuilder()
		pid := tb.Spawn(0, "/bin/gen", "gen")
		for _, ev := range tb.Trace().Events {
			col.Apply(ev)
		}
		fails := 0
		for i := 0; i < checks; i++ {
			path := fmt.Sprintf("mnt/f%03d", i)
			col.Apply(trace.Event{Kind: trace.Write, PID: pid, Path: path, Bytes: 1024})
			col.Apply(trace.Event{Kind: trace.Close, PID: pid, Path: path})
			ref, _ := col.FileRef(path)
			bundles := col.PendingFor(path)
			for _, b := range bundles {
				col.MarkRecorded(b.Ref)
			}
			if err := p.Commit(core.FileObject{Path: path, Size: 1024, Ref: ref}, bundles); err != nil {
				return nil, err
			}
			rep, err := core.CheckCoupling(dep, core.BackendSDB, path)
			if err != nil || !rep.Coupled {
				fails++
			}
			dep.Settle()
			// After settling, the check must always pass.
			rep, err = core.CheckCoupling(dep, core.BackendSDB, path)
			if err != nil {
				return nil, err
			}
			if !rep.Coupled {
				return nil, errors.New("bench: coupling check failed after settle")
			}
		}
		points = append(points, ConsistencyPoint{Mode: mode, Checks: checks, TransientFails: fails})
	}
	return points, nil
}

// metadataPersistenceDemo shows why P1 does not store provenance as object
// metadata (§4.3.1): deleting the object would delete its provenance. It
// returns true when the violation is demonstrated.
func MetadataPersistenceDemo(seed int64) (bool, error) {
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.Consistency = sim.Strict
	env := sim.NewEnv(cfg)
	dep := core.NewDeployment(env)
	// The rejected design: provenance inline in the object's metadata.
	meta := map[string]string{"provenance": "type=file,input=gcc_1"}
	if err := dep.Store.Put("data/mnt/f", []byte("x"), meta); err != nil {
		return false, err
	}
	if err := dep.Store.Delete("data/mnt/f"); err != nil {
		return false, err
	}
	_, err := dep.Store.Head("data/mnt/f")
	return err != nil, nil // provenance gone with the object
}
