package bench

import "testing"

// queryAPICompare runs the repeated-query workload in both cache modes on
// one configuration and applies the invariants that must hold at any scale:
// identical result digests and strictly fewer billed SELECTs with the cache
// on.
func queryAPICompare(t *testing.T, items, chains, depth, repeats int) (uncached, cached QueryAPIRun) {
	t.Helper()
	uncached, err := QueryAPI(17, items, chains, depth, repeats, false)
	if err != nil {
		t.Fatal(err)
	}
	cached, err = QueryAPI(17, items, chains, depth, repeats, true)
	if err != nil {
		t.Fatal(err)
	}
	if uncached.Digest != cached.Digest || uncached.Digest == "" {
		t.Fatalf("cached results diverged: %s vs %s", uncached.Digest, cached.Digest)
	}
	if cached.Selects >= uncached.Selects {
		t.Errorf("cache did not cut SELECTs: %d cached vs %d uncached", cached.Selects, uncached.Selects)
	}
	if cached.CacheHits == 0 {
		t.Error("cached run recorded no hits")
	}
	t.Logf("uncached: sim=%.3fs selects=%d ops=%d", uncached.SimSeconds, uncached.Selects, uncached.TotalOps)
	t.Logf("cached:   sim=%.3fs selects=%d ops=%d hits=%d misses=%d (%.1fx sim, %.1fx fewer selects)",
		cached.SimSeconds, cached.Selects, cached.TotalOps, cached.CacheHits, cached.CacheMisses,
		uncached.SimSeconds/cached.SimSeconds, float64(uncached.Selects)/float64(cached.Selects))
	return uncached, cached
}

// TestQueryAPICacheIdentical is the always-on correctness check: a small
// repeated workload returns byte-identical results with the cache on.
func TestQueryAPICacheIdentical(t *testing.T) {
	queryAPICompare(t, 2_000, 8, 5, 3)
}

// TestQueryCacheSpeedup is the acceptance gate for the read-path cache at
// scale: on a repeated-traversal workload over ≥30k items the cache must
// cut simulated query time by ≥2x and billed SELECTs below the uncached
// run, with byte-identical results.
func TestQueryCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N benchmark")
	}
	uncached, cached := queryAPICompare(t, 30_000, 48, 10, 6)
	if uncached.SimSeconds < 2*cached.SimSeconds {
		t.Errorf("simulated time: uncached %.3fs vs cached %.3fs — %.2fx, want >= 2x",
			uncached.SimSeconds, cached.SimSeconds, uncached.SimSeconds/cached.SimSeconds)
	}
	// After the cold pass every repeat is served client-side: the cached
	// run's SELECT spend must stay within ~one cold pass, not repeats of it.
	coldPass := uncached.Selects / int64(uncached.Repeats)
	if cached.Selects > coldPass+coldPass/2 {
		t.Errorf("cached SELECTs %d exceed 1.5x one cold pass (%d)", cached.Selects, coldPass)
	}
}
