package bench

import (
	"passcloud/internal/core"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// Figure 4 of the paper: elapsed times of the three workloads under the
// four configurations, from EC2 instances (running the kernels under UML)
// and from a local machine, in the September-2009 and December-2009
// service eras. Table 4 (cost) falls out of the same runs.

// Fig4Cell is one bar of Figure 4.
type Fig4Cell struct {
	Workload    string
	Protocol    string
	Site        sim.Site
	Era         sim.Era
	ElapsedSec  float64
	OverheadPct float64 // vs the S3fs bar of the same workload/site/era
	CostUSD     float64
}

// Fig4 runs one era's twelve result sets (3 workloads × 2 sites × 4
// configurations). Workload order follows the figure: Blast, Nightly,
// Challenge; EC2 half first, then local.
func Fig4(era sim.Era, seed int64, scale float64) ([]Fig4Cell, error) {
	var cells []Fig4Cell
	for _, site := range []sim.Site{sim.SiteEC2, sim.SiteLocal} {
		for _, w := range workload.All(sim.NewRand(seed)) {
			var base Result
			for _, f := range core.Factories() {
				s := Setup{
					Protocol: f.Name,
					Site:     site,
					Era:      era,
					// The paper runs the EC2 benchmarks inside UML (no
					// custom kernels on EC2); the local machine runs the
					// kernels natively.
					UML:   site == sim.SiteEC2,
					Seed:  seed,
					Scale: scale,
				}
				r, err := RunWorkload(w, s)
				if err != nil {
					return nil, err
				}
				if f.Name == "S3fs" {
					base = r
				}
				cells = append(cells, Fig4Cell{
					Workload:    w.Name,
					Protocol:    f.Name,
					Site:        site,
					Era:         era,
					ElapsedSec:  seconds(r.Elapsed),
					OverheadPct: Overhead(r, base),
					CostUSD:     r.CostUSD,
				})
			}
		}
	}
	return cells, nil
}

// Table4Row is one column group of Table 4: the per-workload dollar cost of
// each configuration (including the commit daemon for P3).
type Table4Row struct {
	Protocol  string
	Nightly   float64
	Blast     float64
	Challenge float64
}

// Table4 computes workload costs on EC2 (the paper's benchmark platform)
// in the September-2009 era.
func Table4(seed int64, scale float64) ([]Table4Row, error) {
	costs := make(map[string]map[string]float64) // protocol -> workload -> $
	for _, w := range workload.All(sim.NewRand(seed)) {
		for _, f := range core.Factories() {
			s := Setup{Protocol: f.Name, Site: sim.SiteEC2, Era: sim.EraSept09, UML: true, Seed: seed, Scale: scale}
			r, err := RunWorkload(w, s)
			if err != nil {
				return nil, err
			}
			if costs[f.Name] == nil {
				costs[f.Name] = make(map[string]float64)
			}
			costs[f.Name][w.Name] = r.CostUSD
		}
	}
	var rows []Table4Row
	for _, f := range core.Factories() {
		rows = append(rows, Table4Row{
			Protocol:  f.Name,
			Nightly:   costs[f.Name]["nightly"],
			Blast:     costs[f.Name]["blast"],
			Challenge: costs[f.Name]["challenge"],
		})
	}
	return rows, nil
}
