package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/sim"
)

// Text renderers producing the paper-style tables that cmd/provbench (and
// EXPERIMENTS.md) print.

func check(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// RenderTable1 prints the property matrix.
func RenderTable1(w io.Writer, rows []core.PropertyReport) {
	fmt.Fprintln(w, "Table 1: Properties comparison (empirically probed)")
	fmt.Fprintf(w, "%-28s %6s %6s %6s %6s\n", "Property", "S3fs", "P1", "P2", "P3")
	by := make(map[string]core.PropertyReport)
	for _, r := range rows {
		by[r.Protocol] = r
	}
	line := func(name string, get func(core.PropertyReport) bool) {
		fmt.Fprintf(w, "%-28s %6s %6s %6s %6s\n", name,
			check(get(by["S3fs"])), check(get(by["P1"])), check(get(by["P2"])), check(get(by["P3"])))
	}
	line("Provenance Data-Coupling", func(r core.PropertyReport) bool { return r.DataCoupling })
	line("Multi-object Causal Order", func(r core.PropertyReport) bool { return r.CausalOrdering })
	line("Efficient Query", func(r core.PropertyReport) bool { return r.EfficientQuery })
	line("Data-Indep. Persistence", func(r core.PropertyReport) bool { return r.Persistence })
}

// RenderTable2 prints the per-service upload times.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: Time to upload 50MB of provenance to each service")
	fmt.Fprintf(w, "%-10s %8s %12s %10s\n", "Service", "Conns", "Time (s)", "Requests")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %12.1f %10d\n", r.Service, r.Conns, r.Elapsed.Seconds(), r.Requests)
	}
}

// RenderTable3 prints the data/operation overheads.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: Data transfer and operation overheads (Blast micro)")
	fmt.Fprintf(w, "%-6s %16s %14s %10s %10s\n", "", "Data (MB)", "Data ovh", "Ops", "Ops ovh")
	for _, r := range rows {
		if r.Protocol == "S3fs" {
			fmt.Fprintf(w, "%-6s %16.2f %14s %10d %10s\n", r.Protocol, r.DataMB, "-", r.Ops, "-")
			continue
		}
		fmt.Fprintf(w, "%-6s %16.2f %13.2f%% %10d %9.1f%%\n", r.Protocol, r.DataMB, r.DataPct, r.Ops, r.OpsPct)
	}
}

// RenderTable4 prints the per-workload costs.
func RenderTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4: Cost for each benchmark (USD, includes commit daemon)")
	fmt.Fprintf(w, "%-6s %10s %10s %12s\n", "", "Nightly", "Blast", "Challenge")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %10.2f %10.2f %12.2f\n", r.Protocol, r.Nightly, r.Blast, r.Challenge)
	}
}

// RenderTable5 prints query performance.
func RenderTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table 5: Query performance")
	fmt.Fprintf(w, "%-5s %-9s %12s %12s %10s %8s\n", "Query", "Backend", "Seq (s)", "Par (s)", "MB", "Ops")
	for _, r := range rows {
		par := "-"
		if r.Parallel > 0 {
			par = fmt.Sprintf("%.2f", r.Parallel.Seconds())
		}
		fmt.Fprintf(w, "%-5s %-9s %12.3f %12s %10.2f %8d\n",
			r.Query, r.Backend, r.Sequential.Seconds(), par, r.MB, r.Ops)
	}
}

// RenderFig3 prints the microbenchmark bars.
func RenderFig3(w io.Writer, ec2, uml []MicroResult) {
	fmt.Fprintln(w, "Figure 3: Microbenchmark elapsed times (s)")
	fmt.Fprintf(w, "%-8s %10s %12s\n", "Config", "EC2", "EC2+UML")
	for i := range ec2 {
		fmt.Fprintf(w, "%-8s %10.1f %12.1f\n", ec2[i].Protocol, ec2[i].Elapsed.Seconds(), uml[i].Elapsed.Seconds())
	}
	fmt.Fprintf(w, "%-8s", "ovh%")
	for _, r := range ec2 {
		if r.Protocol != "S3fs" {
			fmt.Fprintf(w, "  %s=%.1f%%", r.Protocol, r.OverheadPct)
		}
	}
	fmt.Fprintln(w)
}

// RenderFig4 prints one era's workload bars grouped as in the figure.
func RenderFig4(w io.Writer, era sim.Era, cells []Fig4Cell) {
	fmt.Fprintf(w, "Figure 4 (%s): Workload elapsed times (s)\n", era)
	fmt.Fprintf(w, "%-7s %-10s %8s %8s %8s %8s   %s\n", "Site", "Workload", "S3fs", "P1", "P2", "P3", "overheads")
	type key struct {
		site sim.Site
		wl   string
	}
	groups := make(map[key][]Fig4Cell)
	var order []key
	for _, c := range cells {
		k := key{c.Site, c.Workload}
		if len(groups[k]) == 0 {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, k := range order {
		g := groups[k]
		vals := make(map[string]Fig4Cell)
		for _, c := range g {
			vals[c.Protocol] = c
		}
		fmt.Fprintf(w, "%-7s %-10s %8.0f %8.0f %8.0f %8.0f   P1=%.1f%% P2=%.1f%% P3=%.1f%%\n",
			k.site, k.wl,
			vals["S3fs"].ElapsedSec, vals["P1"].ElapsedSec, vals["P2"].ElapsedSec, vals["P3"].ElapsedSec,
			vals["P1"].OverheadPct, vals["P2"].OverheadPct, vals["P3"].OverheadPct)
	}
}

// RenderConnSweep prints the connection-scaling ablation.
func RenderConnSweep(w io.Writer, points []ConnSweepPoint) {
	fmt.Fprintln(w, "Ablation: connection scaling (50MB provenance upload, MB/s)")
	byService := make(map[string][]ConnSweepPoint)
	var order []string
	for _, p := range points {
		if len(byService[p.Service]) == 0 {
			order = append(order, p.Service)
		}
		byService[p.Service] = append(byService[p.Service], p)
	}
	for _, svc := range order {
		fmt.Fprintf(w, "%-10s", svc)
		for _, p := range byService[svc] {
			fmt.Fprintf(w, "  %d conns: %6.2f", p.Conns, p.Throughput)
		}
		fmt.Fprintln(w)
	}
}

// RenderChunkSweep prints the WAL chunk-size ablation.
func RenderChunkSweep(w io.Writer, points []ChunkSweepPoint) {
	fmt.Fprintln(w, "Ablation: P3 WAL chunk size (2MB provenance log phase)")
	fmt.Fprintf(w, "%-12s %10s %10s\n", "Chunk", "Time (s)", "Messages")
	for _, p := range points {
		fmt.Fprintf(w, "%-12s %10.1f %10d\n", byteSize(p.ChunkBytes), p.Elapsed.Seconds(), p.Messages)
	}
}

// RenderBatchSweep prints the batch-size ablation.
func RenderBatchSweep(w io.Writer, points []BatchSweepPoint) {
	fmt.Fprintln(w, "Ablation: BatchPutAttributes size (1MB provenance)")
	fmt.Fprintf(w, "%-12s %10s %10s\n", "Batch", "Time (s)", "Calls")
	for _, p := range points {
		fmt.Fprintf(w, "%-12d %10.1f %10d\n", p.BatchSize, p.Elapsed.Seconds(), p.Calls)
	}
}

// RenderConsistency prints the consistency-mode ablation.
func RenderConsistency(w io.Writer, points []ConsistencyPoint) {
	fmt.Fprintln(w, "Ablation: consistency model vs immediate coupling checks")
	for _, p := range points {
		fmt.Fprintf(w, "%-10s %3d checks, %3d transient detection failures\n",
			p.Mode, p.Checks, p.TransientFails)
	}
}

func byteSize(n int) string {
	if n >= 1<<10 && n%(1<<10) == 0 {
		return fmt.Sprintf("%dKB", n/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// Banner prints a section separator.
func Banner(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

// FormatDuration renders a simulated duration in paper style.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.1fs", d.Seconds())
}
