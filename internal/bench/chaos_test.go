package bench

import (
	"testing"
	"time"
)

// chaosPair returns the small equivalence configuration and its fault-free
// twin: identical workload, topology and hedge policy — only the fault plan
// differs.
func chaosPair() (faulted, clean ChaosConfig) {
	base := ChaosConfig{
		Seed:          21,
		Txns:          18,
		BundlesPerTxn: 12,
		Workers:       4,
		ClientConns:   32,
		Scale:         800,
		FromK:         2,
		ToK:           4,
		Resilient:     true,
		Queries:       25,
		HedgeAfter:    200 * time.Millisecond,
	}
	faulted, clean = base, base
	faulted.FaultProb = 0.05
	faulted.ApplyProb = 0.5
	faulted.DupProb = 0.02
	return faulted, clean
}

// TestChaosEquivalence is the always-on tentpole gate: under a 5% uniform
// fault plan (half the mutating faults ambiguous) with duplicate queue
// delivery, the commit+reshard+query workload must lose and duplicate
// nothing, read back byte-identical to its fault-free twin, and keep the
// scatter-gather p99 fan-out latency within 2x of fault-free.
func TestChaosEquivalence(t *testing.T) {
	faultedCfg, cleanCfg := chaosPair()
	faulted, err := ChaosCommitQueryReshard(faultedCfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ChaosCommitQueryReshard(cleanCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("faulted: faults=%d retries=%d hedges=%d p99=%.1fms goodput=%.1f ev/s",
		faulted.Faults, faulted.Retries, faulted.Hedges, faulted.QueryP99Ms, faulted.Goodput)
	t.Logf("clean:   p99=%.1fms goodput=%.1f ev/s", clean.QueryP99Ms, clean.Goodput)

	// The chaos machinery genuinely ran.
	if faulted.Faults == 0 {
		t.Fatal("fault plan armed but nothing injected")
	}
	if faulted.Retries == 0 {
		t.Fatal("faults injected but the resilient layer retried nothing")
	}
	if clean.Faults != 0 {
		t.Fatalf("fault-free twin saw %d faults", clean.Faults)
	}

	// Zero lost, zero duplicated, byte-identical to the fault-free twin.
	if faulted.ItemCount != faulted.Events {
		t.Fatalf("items = %d, want exactly %d (lost or duplicated)", faulted.ItemCount, faulted.Events)
	}
	if faulted.Misplaced != 0 || faulted.Duplicates != 0 {
		t.Fatalf("audit: misplaced=%d duplicates=%d", faulted.Misplaced, faulted.Duplicates)
	}
	if faulted.ProvDigest == "" || faulted.ProvDigest != clean.ProvDigest {
		t.Fatalf("faulted digest %s differs from fault-free %s", faulted.ProvDigest, clean.ProvDigest)
	}

	// The hedged read path keeps the fan-out tail in the fault-free regime.
	if faulted.QueryP99Ms > 2*clean.QueryP99Ms {
		t.Errorf("p99 fan-out %.1fms under faults vs %.1fms clean — > 2x", faulted.QueryP99Ms, clean.QueryP99Ms)
	}
}

// TestChaosNegativeControl pins that the faults are real: the same workload
// with the resilience layer removed visibly fails — raw transient errors
// surface to the committing clients.
func TestChaosNegativeControl(t *testing.T) {
	cfg, _ := chaosPair()
	cfg.Resilient = false
	cfg.FaultProb = 0.15
	run, err := ChaosCommitQueryReshard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Faults == 0 {
		t.Fatal("negative control saw no faults")
	}
	if run.CommitErrors == 0 {
		t.Fatalf("no commit failed with resilience disabled under %d faults — the fault plan is toothless", run.Faults)
	}
	t.Logf("negative control: %d/%d commits failed (first: %s)", run.CommitErrors, run.Txns, run.FirstError)
}

// TestChaosGoodput is the large-N acceptance gate: on a ≥5k-event workload
// the faulted fabric's goodput must stay within 2x of the fault-free twin
// (the retries and backoffs cost sim time, but they must not collapse
// throughput), with the same zero-loss and byte-identity requirements.
func TestChaosGoodput(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N benchmark")
	}
	faultedCfg, cleanCfg := chaosPair()
	for _, c := range []*ChaosConfig{&faultedCfg, &cleanCfg} {
		c.Seed = 31
		c.Txns = 160
		c.BundlesPerTxn = 32 // 5,120 events
		c.Workers = 8
		c.ClientConns = 64
		c.Scale = 0 // ChaosBenchScale
	}
	faulted, err := ChaosCommitQueryReshard(faultedCfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ChaosCommitQueryReshard(cleanCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("faulted: faults=%d retries=%d hedges=%d breaker=%d goodput=%.1f ev/s p99=%.1fms ops=%d $%.4f",
		faulted.Faults, faulted.Retries, faulted.Hedges, faulted.BreakerOpens,
		faulted.Goodput, faulted.QueryP99Ms, faulted.TotalOps, faulted.CostUSD)
	t.Logf("clean:   goodput=%.1f ev/s p99=%.1fms ops=%d $%.4f",
		clean.Goodput, clean.QueryP99Ms, clean.TotalOps, clean.CostUSD)

	if faulted.Events < 5000 {
		t.Fatalf("only %d events, want >= 5000", faulted.Events)
	}
	if faulted.ItemCount != faulted.Events {
		t.Fatalf("items = %d, want exactly %d", faulted.ItemCount, faulted.Events)
	}
	if faulted.Misplaced != 0 || faulted.Duplicates != 0 {
		t.Fatalf("audit: misplaced=%d duplicates=%d", faulted.Misplaced, faulted.Duplicates)
	}
	if faulted.ProvDigest == "" || faulted.ProvDigest != clean.ProvDigest {
		t.Fatalf("faulted digest %s differs from fault-free %s", faulted.ProvDigest, clean.ProvDigest)
	}
	if faulted.Faults == 0 || faulted.Retries == 0 {
		t.Fatalf("chaos did not engage: faults=%d retries=%d", faulted.Faults, faulted.Retries)
	}
	if faulted.Goodput < clean.Goodput/2 {
		t.Errorf("goodput %.1f ev/s under faults vs %.1f clean — collapsed past 2x", faulted.Goodput, clean.Goodput)
	}
	if faulted.QueryP99Ms > 2*clean.QueryP99Ms {
		t.Errorf("p99 fan-out %.1fms under faults vs %.1fms clean — > 2x", faulted.QueryP99Ms, clean.QueryP99Ms)
	}
}
