package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
	"passcloud/internal/uuid"
)

// The sharded-fabric benchmark: replay the ≥50k-event commit workload of
// BenchmarkCommitPipeline through P3 on a K-way sharded fabric (K WAL
// queues, K SimpleDB domains, each with its own request-rate gate) and on
// the K=1 seed topology, and compare simulated time, billed requests and
// dollar cost. Every configuration commits byte-identical provenance,
// verified by reading every object's bundles back through the (routed)
// ReadProvenance and hashing them: the digest must not depend on K.

// ShardedWriteScale is the live-mode time scale of the sharded-write
// benchmark. It is deliberately far lower than CommitPipeScale: the sharded
// comparison hinges on per-endpoint gate queueing, so the modelled service
// latency — not the host's own compute time, which a 2000x compression
// magnifies into most of the measurement — must dominate the run. At 50x
// the measured sim times are within a few percent of a 25x run (scale
// convergence), i.e. the measurement is honest.
const ShardedWriteScale = 50

// ShardedWriteRun is one measured configuration of the sharded-write
// benchmark.
type ShardedWriteRun struct {
	WALShards     int              `json:"wal_shards"`
	DBShards      int              `json:"db_shards"`
	Txns          int              `json:"txns"`
	BundlesPerTxn int              `json:"bundles_per_txn"`
	Events        int              `json:"events"`
	Workers       int              `json:"workers"`
	SimSeconds    float64          `json:"sim_seconds"`
	WallSeconds   float64          `json:"wall_seconds"`
	SQSRequests   int64            `json:"sqs_requests"`
	SDBBatchCalls int64            `json:"sdb_batch_calls"`
	TotalOps      int64            `json:"total_ops"` // billed requests, all services
	CostUSD       float64          `json:"cost_usd"`
	OpsByKind     map[string]int64 `json:"ops_by_kind"`
	OpsByShard    map[string]int64 `json:"ops_by_shard"` // per queue/domain endpoint
	ProvDigest    string           `json:"prov_digest"`
}

// ShardedWrite measures one fabric configuration. workers sizes the
// commit-daemon pool, clientConns bounds concurrent client commits, scale 0
// uses CommitPipeScale, and topo sizes the WAL/domain shard sets (the zero
// value is the K=1 seed topology).
func ShardedWrite(seed int64, txns, bundlesPerTxn, workers, clientConns int, scale float64, topo core.Topology) (ShardedWriteRun, error) {
	if clientConns <= 0 {
		clientConns = 64
	}
	if scale == 0 {
		scale = ShardedWriteScale
	}
	set := commitPipeTxns(seed, txns, bundlesPerTxn)
	runtime.GC() // keep allocator debt out of the scaled-time measurement

	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.TimeScale = scale
	cfg.Consistency = sim.Strict // isolate commit timing from staleness retries
	env := sim.NewEnv(cfg)
	dep := core.NewShardedDeployment(env, topo)
	p3 := core.NewP3(dep, core.Options{CommitWorkers: workers})

	// The commit-daemon pool drains its shard subscriptions while the
	// clients log.
	stopDaemon := make(chan struct{})
	daemonDone := make(chan struct{})
	go func() {
		defer close(daemonDone)
		p3.RunDaemon(stopDaemon, time.Second)
	}()

	sim0 := env.Now()
	wall0 := time.Now()
	sem := make(chan struct{}, clientConns)
	errs := make(chan error, len(set))
	for i := range set {
		tx := &set[i]
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			errs <- p3.Commit(tx.obj, tx.bundles)
		}()
	}
	var firstErr error
	for range set {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	close(stopDaemon)
	<-daemonDone
	if err := p3.Settle(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return ShardedWriteRun{}, firstErr
	}

	usage := env.Meter().Usage()
	run := ShardedWriteRun{
		WALShards:     dep.Topo.WALShards,
		DBShards:      dep.Topo.DBShards,
		Txns:          txns,
		BundlesPerTxn: bundlesPerTxn,
		Events:        txns * bundlesPerTxn,
		Workers:       workers,
		SimSeconds:    (env.Now() - sim0).Seconds(),
		WallSeconds:   time.Since(wall0).Seconds(),
		SQSRequests:   sqsRequests(usage),
		SDBBatchCalls: usage.OpsByKind["sdb.BatchPutAttributes"],
		TotalOps:      usage.TotalOps,
		CostUSD:       usage.Cost(cfg.StorageWindow),
		OpsByKind:     usage.OpsByKind,
		OpsByShard:    usage.OpsByEndpoint,
	}

	// Read every transaction's provenance back (outside the measurement, on
	// an instant manual clock) and fold it into the run digest; equal
	// digests across shard counts prove the fabric's routing and merge
	// reproduce the canonical single-domain read results byte for byte.
	env.Clock().SetScale(0)
	h := sha256.New()
	for i := range set {
		for _, u := range []uuid.UUID{set[i].file, set[i].proc} {
			bundles, err := core.ReadProvenance(dep, core.BackendSDB, u)
			if err != nil {
				return ShardedWriteRun{}, fmt.Errorf("bench: read-back of %s: %w", u, err)
			}
			h.Write(prov.EncodeBundles(bundles))
		}
		o, err := dep.Store.Get(core.DataKey(set[i].obj.Path))
		if err != nil {
			return ShardedWriteRun{}, fmt.Errorf("bench: data of %s: %w", set[i].obj.Path, err)
		}
		h.Write([]byte(o.Metadata["prov-uuid"] + "/" + o.Metadata["prov-version"]))
	}
	run.ProvDigest = hex.EncodeToString(h.Sum(nil))

	// A clean fabric leaves nothing behind on any shard.
	if n := dep.WAL.Len(); n != 0 {
		return ShardedWriteRun{}, fmt.Errorf("bench: %d WAL messages left after settle", n)
	}
	if keys, _, _ := dep.Store.ListAll(core.TmpPrefix); len(keys) != 0 {
		return ShardedWriteRun{}, fmt.Errorf("bench: %d temp objects leaked", len(keys))
	}
	if n := p3.PendingTxns(); n != 0 {
		return ShardedWriteRun{}, fmt.Errorf("bench: %d transactions still pending", n)
	}
	return run, nil
}
