package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/prov"
	"passcloud/internal/query"
	"passcloud/internal/sim"
	"passcloud/internal/uuid"
)

// The read-path caching benchmark: a repeated-traversal workload — the
// monitoring/debugging pattern where the same lineage questions are asked
// again and again over a settled corpus — run through the composable query
// API once without and once with the versioned read-through cache. Items
// are immutable under the uuid_version naming, so the cache needs no
// invalidation; after the first pass every BFS level, version lookup and
// root resolution is served client-side and the SELECT spend collapses to
// the cold pass.

// QueryAPIRun is one measured configuration of the repeated-query workload.
type QueryAPIRun struct {
	Items       int     `json:"items"`
	Chains      int     `json:"chains"`
	Depth       int     `json:"depth"`
	Repeats     int     `json:"repeats"`
	Cached      bool    `json:"cached"`
	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	Selects     int64   `json:"selects"` // billed SELECT requests
	TotalOps    int64   `json:"total_ops"`
	Results     int     `json:"results"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Digest      string  `json:"digest"`
}

// QueryAPI populates a provenance-shaped domain (chains derivation chains
// of the given depth rooted at one "bigprog" process, padded to items with
// noise) and then runs the repeated-traversal workload: repeats rounds of
// {Q4-shaped descendants BFS, Q2-shaped versions lookup, Q3-shaped indexed
// root find}, all through query.Spec execution. cached installs the
// read-through cache before the first round. Every round's results fold
// into the digest, so a caching bug that staled or dropped results changes
// the digest instead of hiding.
func QueryAPI(seed int64, items, chains, depth, repeats int, cached bool) (QueryAPIRun, error) {
	if items < chains*depth+1 {
		return QueryAPIRun{}, fmt.Errorf("bench: %d items cannot hold %d chains of depth %d", items, chains, depth)
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.Consistency = sim.Strict // isolate query timing from staleness retries
	env := sim.NewEnv(cfg)
	dep := core.NewShardedDeployment(env, core.Topology{DBShards: 4})
	rnd := sim.NewRand(seed)

	newRef := func() prov.Ref { return prov.Ref{UUID: uuid.New(rnd), Version: 1} }
	procRef := newRef()
	specs := []core.ItemSpec{{Ref: procRef, Type: "proc", Name: "bigprog"}}
	var probeRef prov.Ref
	for c := 0; c < chains; c++ {
		parent := procRef
		for l := 0; l < depth; l++ {
			ref := newRef()
			specs = append(specs, core.ItemSpec{
				Ref:   ref,
				Type:  "file",
				Name:  fmt.Sprintf("mnt/big/c%04d/f%02d", c, l),
				Input: parent.String(),
			})
			parent = ref
		}
		if c == 0 {
			probeRef = parent
		}
	}
	for len(specs) < items {
		specs = append(specs, core.ItemSpec{
			Ref:  newRef(),
			Type: "file",
			Name: fmt.Sprintf("mnt/noise/%07d", len(specs)),
		})
	}
	if err := core.PopulateItems(dep.DB, specs); err != nil {
		return QueryAPIRun{}, err
	}
	// Warm the per-shard sorted name tables (built lazily after bulk
	// population) so the first measured query does not absorb the one-time
	// sort in either mode.
	if _, err := dep.DB.Select("select itemName() from "+core.DomainName+" limit 1", ""); err != nil {
		return QueryAPIRun{}, err
	}

	e := query.New(dep, core.BackendSDB)
	if cached {
		e.SetCache(query.NewCache(0))
	}
	workload := []query.Spec{
		{Roots: query.Roots{Attrs: []query.AttrMatch{
			{Attr: prov.AttrName, Value: "bigprog"}, {Attr: prov.AttrType, Value: "proc"},
		}}, Direction: query.Descendants, Workers: 8},
		{Roots: query.Roots{UUIDs: []uuid.UUID{probeRef.UUID}}, Direction: query.Versions, Project: query.ProjectBundles},
		{Roots: query.Roots{Attrs: []query.AttrMatch{
			{Attr: prov.AttrName, Value: "mnt/big/c0000/f05"},
		}}, Direction: query.Self},
	}

	run := QueryAPIRun{Items: items, Chains: chains, Depth: depth, Repeats: repeats, Cached: cached}
	h := sha256.New()
	ops0 := env.Meter().Usage()
	sim0 := env.Now()
	wall0 := time.Now()
	for rep := 0; rep < repeats; rep++ {
		for si, spec := range workload {
			n := 0
			for r, err := range e.Run(spec) {
				if err != nil {
					return QueryAPIRun{}, fmt.Errorf("bench: repeat %d spec %d: %w", rep, si, err)
				}
				n++
				fmt.Fprintf(h, "%d/%s@%d\n", si, r.Ref, r.Depth)
				if r.Bundle != nil {
					// Bundle bytes too: a cache serving stale or corrupted
					// bodies with the right ref set must change the digest.
					h.Write(prov.EncodeBundles([]prov.Bundle{*r.Bundle}))
				}
			}
			run.Results += n
		}
	}
	usage := env.Meter().Usage()
	run.SimSeconds = (env.Now() - sim0).Seconds()
	run.WallSeconds = time.Since(wall0).Seconds()
	run.Selects = usage.OpsByKind["sdb.Select"] - ops0.OpsByKind["sdb.Select"]
	run.TotalOps = usage.TotalOps - ops0.TotalOps
	if c := e.Cache(); c != nil {
		s := c.Stats()
		run.CacheHits, run.CacheMisses = s.Hits, s.Misses
	}
	run.Digest = hex.EncodeToString(h.Sum(nil))
	return run, nil
}
