package bench

import (
	"strings"
	"testing"

	"passcloud/internal/core"
	"passcloud/internal/pasfs"
	"passcloud/internal/pass"
	"passcloud/internal/query"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// TestWorkloadEndStateInvariants replays the nightly workload through every
// protocol on a manual clock (instant, timing-free) and verifies the
// cloud-side end state: every archive present and coupled, full ancestry
// recorded, Merkle-verifiable, and queryable where the backend allows.
func TestWorkloadEndStateInvariants(t *testing.T) {
	for _, f := range core.ProtocolFactories() {
		t.Run(f.Name, func(t *testing.T) {
			cfg := sim.DefaultConfig()
			cfg.Seed = 13
			env := sim.NewEnv(cfg)
			dep := core.NewDeployment(env)
			proto := f.New(dep, core.Options{})
			col := pass.New(env.Rand(), nil)
			fs := pasfs.New(env, proto, col, pasfs.DefaultConfig())
			w := workload.Nightly(sim.NewRand(13))
			if err := fs.Run(w.Trace); err != nil {
				t.Fatal(err)
			}
			if err := proto.Settle(); err != nil {
				t.Fatal(err)
			}
			dep.Settle()
			backend := core.BackendOf(proto)

			// The workload's bill is dominated by the ~10 GB of transfer
			// in (~$1). Captured before the verification below adds
			// transfer-out charges of its own.
			cost := env.Meter().Usage().Cost(0)
			if cost < 0.9 || cost > 1.3 {
				t.Fatalf("nightly bill $%.2f, want ≈$1", cost)
			}

			// All thirty archives present with full size.
			keys, _, err := dep.Store.ListAll(core.DataPrefix + "mnt/backup/")
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 30 {
				t.Fatalf("archives = %d, want 30", len(keys))
			}
			var totalBytes int64
			for _, k := range keys {
				o, err := dep.Store.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				totalBytes += o.Size
			}
			if gb := float64(totalBytes) / (1 << 30); gb < 9 || gb > 12 {
				t.Fatalf("stored %.1f GB, want ≈10.2", gb)
			}

			// Every archive coupled, ancestry complete, digest verified.
			for _, path := range []string{"mnt/backup/night-00.tar", "mnt/backup/night-29.tar"} {
				rep, err := core.VerifiedFetch(dep, backend, path, 20)
				if err != nil || !rep.Coupled {
					t.Fatalf("%s not coupled: %+v err=%v", path, rep, err)
				}
				ref, _ := col.FileRef(path)
				walk, err := core.CheckCausalOrdering(dep, backend, ref)
				if err != nil {
					t.Fatal(err)
				}
				if !walk.Ordered() {
					t.Fatalf("%s dangling: %v", path, walk.Dangling)
				}
				// Flat tree: archive + cp + 40 repo files.
				if walk.Visited < 40 {
					t.Fatalf("%s ancestry too small: %d", path, walk.Visited)
				}
				mrep, err := core.VerifyAncestry(dep, backend, path)
				if err != nil {
					t.Fatal(err)
				}
				if !mrep.Verified {
					t.Fatalf("%s failed Merkle verification: %+v", path, mrep)
				}
			}

			// Q3 on the queryable backends: the cp process directly
			// outputs the archives.
			if backend == core.BackendSDB {
				eng := query.New(dep, backend)
				refs, _, err := eng.DirectOutputsOf("cp", 8)
				if err != nil {
					t.Fatal(err)
				}
				archives := 0
				for _, r := range refs {
					bundles, err := core.ReadProvenance(dep, backend, r.UUID)
					if err != nil {
						t.Fatal(err)
					}
					for _, bn := range bundles {
						if bn.Ref == r && strings.HasPrefix(bn.Name, "mnt/backup/") {
							archives++
						}
					}
				}
				if archives != 30 {
					t.Fatalf("Q3 found %d archives, want 30", archives)
				}
			}

		})
	}
}
