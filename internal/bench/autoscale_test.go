package bench

import (
	"sync"
	"testing"
)

// The gate runs the three ramps once (managed, static K=1, steady-load
// control) and every assertion reads from the shared result, mirroring the
// tenants gate idiom. Scale 10 keeps wall-clock scheduler noise far below
// the modelled latencies so the p99 ratios are load, not jitter.
var (
	autoscaleGateOnce sync.Once
	autoscaleGateCmp  AutoscaleComparison
	autoscaleGateErr  error
)

func autoscaleGate(t *testing.T) AutoscaleComparison {
	t.Helper()
	if testing.Short() {
		t.Skip("autoscale load ramp skipped in -short mode")
	}
	autoscaleGateOnce.Do(func() {
		autoscaleGateCmp, autoscaleGateErr = AutoscaleCompare(1, 10)
	})
	if autoscaleGateErr != nil {
		t.Fatalf("AutoscaleCompare: %v", autoscaleGateErr)
	}
	return autoscaleGateCmp
}

// TestAutoscaleGate is the acceptance gate: under the same surge the
// controller-managed fabric keeps sustain p99 within BoundRatio of its own
// steady-state p99, while the static K=1 twin blows through the bound.
func TestAutoscaleGate(t *testing.T) {
	cmp := autoscaleGate(t)

	if cmp.Managed.Grows < 1 || cmp.Managed.FinalK <= 1 {
		t.Fatalf("managed run never grew: grows=%d finalK=%d", cmp.Managed.Grows, cmp.Managed.FinalK)
	}
	if cmp.ManagedRatio > cmp.BoundRatio {
		t.Fatalf("managed sustain p99 = %.2fx steady (bound %.1fx): steady %.0fms sustain %.0fms",
			cmp.ManagedRatio, cmp.BoundRatio,
			cmp.Managed.PhaseP99("steady"), cmp.Managed.PhaseP99("sustain"))
	}
	if cmp.Static.FinalK != 1 {
		t.Fatalf("static twin resharded to K=%d", cmp.Static.FinalK)
	}
	if cmp.StaticRatio <= cmp.BoundRatio {
		t.Fatalf("static K=1 sustain p99 = %.2fx steady; expected it to exceed the %.1fx bound — the surge is too gentle to prove anything",
			cmp.StaticRatio, cmp.BoundRatio)
	}
}

// TestAutoscaleSteadyControlNoFlaps is the negative control: a controller
// watching perfectly steady in-band load must never reshard.
func TestAutoscaleSteadyControlNoFlaps(t *testing.T) {
	cmp := autoscaleGate(t)

	sc := cmp.SteadyControl
	if sc.Grows+sc.Shrinks != 0 {
		t.Fatalf("steady control flapped: grows=%d shrinks=%d", sc.Grows, sc.Shrinks)
	}
	if sc.FinalK != 1 {
		t.Fatalf("steady control finalK=%d, want 1", sc.FinalK)
	}
}

// TestAutoscaleRampIntegrity pins that measurement never compromises
// durability: every committed event is readable and the fabric audits clean
// on all three runs, managed reshards included.
func TestAutoscaleRampIntegrity(t *testing.T) {
	cmp := autoscaleGate(t)

	for _, run := range []struct {
		name string
		r    AutoscaleRun
	}{
		{"managed", cmp.Managed},
		{"static", cmp.Static},
		{"steady_control", cmp.SteadyControl},
	} {
		if run.r.ItemCount != run.r.Events {
			t.Errorf("%s: item count %d != events %d", run.name, run.r.ItemCount, run.r.Events)
		}
		if run.r.Misplaced != 0 || run.r.Duplicates != 0 {
			t.Errorf("%s: audit misplaced=%d duplicates=%d", run.name, run.r.Misplaced, run.r.Duplicates)
		}
	}
}
