package bench

import (
	"runtime"
	"time"

	"passcloud/internal/cloud/sdb"
	"passcloud/internal/cloud/sqs"
	"passcloud/internal/cloud/store"
	"passcloud/internal/core"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// Table 2 of the paper: upload 50 MB of provenance (captured from a Linux
// compile) to each service in isolation, each at its best connection
// count — 150 for S3 and SQS, 40 for SimpleDB (where throughput peaks).

// Table2Row is one service's measurement.
type Table2Row struct {
	Service  string
	Conns    int
	Elapsed  time.Duration
	Requests int64
}

// Table2Size is the provenance volume uploaded (50 MB, as in the paper).
const Table2Size = 50 << 20

// uploadS3 stores the provenance as objects, conns at a time. The upload
// tool groups each compilation unit's bundles (source, process, object)
// into one store object, the way P1 groups an object's provenance.
func uploadS3(env *sim.Env, bundles []prov.Bundle, conns int) {
	st := store.New(env)
	var groups [][]prov.Bundle
	var cur []prov.Bundle
	for _, b := range bundles {
		cur = append(cur, b)
		// A unit closes at its object file (the node that consumes the
		// process); headers and stragglers flush with the next unit.
		if len(b.Records) > 0 && b.Type == prov.File && len(cur) >= 3 {
			groups = append(groups, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	sem := make(chan struct{}, conns)
	done := make(chan struct{}, len(groups))
	for _, g := range groups {
		g := g
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; done <- struct{}{} }()
			st.Put(core.ProvKey(g[len(g)-1].Ref.UUID), prov.EncodeBundles(g), nil)
		}()
	}
	for range groups {
		<-done
	}
}

// uploadSDB stores the bundles as items in 25-item batches, conns at a time.
func uploadSDB(env *sim.Env, bundles []prov.Bundle, conns int) error {
	dom := sdb.New(env, core.DomainName)
	st := store.New(env) // spill target for >1KB values
	type batch []sdb.PutRequest
	var batches []batch
	var cur batch
	for _, b := range bundles {
		var attrs []sdb.Attr
		for _, r := range b.Records {
			v := r.Value
			if r.IsXref() {
				v = r.Xref.String()
			} else if len(v) > sdb.MaxValueLen {
				key := core.SpillPrefix + b.Ref.String()
				st.Put(key, []byte(v), nil)
				v = core.SpillMarker + key
			}
			attrs = append(attrs, sdb.Attr{Name: r.Attr, Value: v})
		}
		cur = append(cur, sdb.PutRequest{Item: b.Ref.String(), Attrs: attrs, Replace: true})
		if len(cur) == sdb.MaxBatchItems {
			batches = append(batches, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	sem := make(chan struct{}, conns)
	errs := make(chan error, len(batches))
	for _, bt := range batches {
		bt := bt
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			errs <- dom.BatchPutAttributes(bt)
		}()
	}
	var first error
	for range batches {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// uploadSQSPayload chunks an encoded provenance payload into 8 KB messages,
// conns at a time.
func uploadSQSPayload(env *sim.Env, payload []byte, conns int) error {
	q := sqs.New(env, "prov-upload")
	var chunks [][]byte
	for start := 0; start < len(payload); start += sqs.MaxMessageSize {
		end := start + sqs.MaxMessageSize
		if end > len(payload) {
			end = len(payload)
		}
		chunks = append(chunks, payload[start:end])
	}
	sem := make(chan struct{}, conns)
	errs := make(chan error, len(chunks))
	for _, c := range chunks {
		c := c
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			_, err := q.SendMessage(c)
			errs <- err
		}()
	}
	var first error
	for range chunks {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Table2 runs the three uploads. conns of zero uses the paper's tuned
// values (150/40/150); pass explicit values for the connection ablation.
func Table2(seed int64, scale float64, connsS3, connsSDB, connsSQS int) ([]Table2Row, error) {
	if connsS3 <= 0 {
		connsS3 = 150
	}
	if connsSDB <= 0 {
		connsSDB = 40
	}
	if connsSQS <= 0 {
		connsSQS = 150
	}
	bundles := workload.CompileProvenance(sim.NewRand(seed), Table2Size)
	run := func(name string, conns int, f func(*sim.Env) error) (Table2Row, error) {
		// Clear allocator debt from the previous phase so GC pauses do
		// not leak into this phase's scaled-time measurement.
		runtime.GC()
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		cfg.TimeScale = scale
		if cfg.TimeScale == 0 {
			cfg.TimeScale = Table2Scale
		}
		env := sim.NewEnv(cfg)
		start := env.Now()
		if err := f(env); err != nil {
			return Table2Row{}, err
		}
		return Table2Row{
			Service:  name,
			Conns:    conns,
			Elapsed:  env.Now() - start,
			Requests: env.Meter().Usage().TotalOps,
		}, nil
	}
	s3row, err := run("S3", connsS3, func(e *sim.Env) error { uploadS3(e, bundles, connsS3); return nil })
	if err != nil {
		return nil, err
	}
	sdbRow, err := run("SimpleDB", connsSDB, func(e *sim.Env) error { return uploadSDB(e, bundles, connsSDB) })
	if err != nil {
		return nil, err
	}
	// The queue phase needs only the encoded payload; release the bundle
	// structures first so GC pressure from the 50 MB stream does not skew
	// the scaled-time measurement.
	payload := prov.EncodeBundles(bundles)
	bundles = nil
	sqsRow, err := run("SQS", connsSQS, func(e *sim.Env) error { return uploadSQSPayload(e, payload, connsSQS) })
	if err != nil {
		return nil, err
	}
	return []Table2Row{s3row, sdbRow, sqsRow}, nil
}
