package bench

import (
	"sync"
	"testing"
)

// tenantIsolationBase is the shared configuration of the isolation gates: a
// compliant tenant committing open-loop under a 5% ambiguous-fault plan on
// a K=2 fabric, with the storm parameters the shared and negative-control
// runs add on top.
func tenantIsolationBase() TenantIsolationConfig {
	return TenantIsolationConfig{
		Seed:          33,
		Txns:          120,
		BundlesPerTxn: 5, // 600 events
		Workers:       4,
		ClientConns:   16,
		OfferedRate:   30,
		K:             2,
		FaultProb:     0.05,
		ApplyProb:     0.5,
		DupProb:       0.02,
		AbuserConns:   480,
		AbuserTxns:    6,
		Isolation:     true,
	}
}

// The solo baseline is identical in both gate tests (same seed, no storm),
// so compute it once.
var (
	soloOnce sync.Once
	soloRun  TenantIsolationRun
	soloErr  error
)

func soloBaseline(t *testing.T) TenantIsolationRun {
	t.Helper()
	soloOnce.Do(func() {
		cfg := tenantIsolationBase()
		cfg.Abuser = false
		soloRun, soloErr = TenantIsolation(cfg)
	})
	if soloErr != nil {
		t.Fatalf("solo baseline: %v", soloErr)
	}
	if soloRun.CommitErrors != 0 {
		t.Fatalf("solo baseline lost %d commits: %s", soloRun.CommitErrors, soloRun.FirstError)
	}
	if !soloRun.Verified {
		t.Fatal("solo baseline did not verify")
	}
	return soloRun
}

// TestTenantIsolationGate is the acceptance gate: with the abusive tenant
// replaying a retry storm under the 5% fault plan, the compliant tenant's
// p99 commit latency degrades at most 2x and its goodput stays at least
// 0.8x of its solo baseline, with zero lost or duplicated items and
// byte-identical read-back provenance.
func TestTenantIsolationGate(t *testing.T) {
	if testing.Short() {
		t.Skip("isolation gate runs full scaled-time workloads")
	}
	solo := soloBaseline(t)

	cfg := tenantIsolationBase()
	cfg.Abuser = true
	shared, err := TenantIsolation(cfg)
	if err != nil {
		t.Fatalf("shared run: %v", err)
	}
	t.Logf("solo:   p99=%.1fms goodput=%.1f ev/s", solo.CommitP99Ms, solo.Goodput)
	t.Logf("shared: p99=%.1fms goodput=%.1f ev/s (abuser: %d attempts, %d admitted, %d shed, %d committed)",
		shared.CommitP99Ms, shared.Goodput,
		shared.AbuserAttempts, shared.AbuserAdmitted, shared.AbuserShed, shared.AbuserCommitted)

	if shared.CommitErrors != 0 {
		t.Fatalf("shared run lost %d compliant commits: %s", shared.CommitErrors, shared.FirstError)
	}
	if !shared.Verified {
		t.Fatal("shared run did not verify")
	}
	if shared.AbuserShed == 0 {
		t.Fatal("the storm was never shed — admission control did not engage")
	}
	if ratio := shared.CommitP99Ms / solo.CommitP99Ms; ratio > 2 {
		t.Fatalf("compliant p99 degraded %.2fx under the storm (%.1fms vs %.1fms), bound is 2x",
			ratio, shared.CommitP99Ms, solo.CommitP99Ms)
	}
	if ratio := shared.Goodput / solo.Goodput; ratio < 0.8 {
		t.Fatalf("compliant goodput fell to %.2fx under the storm (%.1f vs %.1f ev/s), bound is 0.8x",
			ratio, shared.Goodput, solo.Goodput)
	}
	if shared.ProvDigest != solo.ProvDigest {
		t.Fatalf("compliant provenance diverged under the storm: %s vs %s",
			shared.ProvDigest, solo.ProvDigest)
	}
}

// TestTenantIsolationNegativeControl proves the bound is held by the
// machinery, not by slack in the workload: the identical storm with
// isolation disabled must visibly violate the latency or goodput bound.
func TestTenantIsolationNegativeControl(t *testing.T) {
	if testing.Short() {
		t.Skip("isolation gate runs full scaled-time workloads")
	}
	solo := soloBaseline(t)

	cfg := tenantIsolationBase()
	cfg.Abuser = true
	cfg.Isolation = false
	control, err := TenantIsolation(cfg)
	if err != nil {
		t.Fatalf("negative control: %v", err)
	}
	p99Ratio := control.CommitP99Ms / solo.CommitP99Ms
	goodputRatio := control.Goodput / solo.Goodput
	t.Logf("no_isolation: p99=%.1fms (%.2fx) goodput=%.1f ev/s (%.2fx), abuser committed %d",
		control.CommitP99Ms, p99Ratio, control.Goodput, goodputRatio, control.AbuserCommitted)
	if control.AbuserShed != 0 || control.AbuserAdmitted != 0 {
		t.Fatalf("negative control still metered admission: admitted=%d shed=%d",
			control.AbuserAdmitted, control.AbuserShed)
	}
	if p99Ratio <= 2 && goodputRatio >= 0.8 {
		t.Fatalf("negative control stayed inside the bound (p99 %.2fx, goodput %.2fx) — the gate is not testing the front door",
			p99Ratio, goodputRatio)
	}
}
