package bench

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/prov"
	"passcloud/internal/resilient"
	"passcloud/internal/sim"
	"passcloud/internal/uuid"
)

// The chaos harness: drive the pinned commit + reshard + query workload
// through P3 while every service endpoint injects transient faults, and
// prove the resilient client layer absorbs all of it — the faulted fabric
// must hold exactly one copy of every provenance item and read back
// byte-identical to its fault-free twin, the scatter-gather read path must
// keep its tail latency in the same regime, and the same workload with
// resilience disabled must demonstrably fail. This is the robustness
// analogue of the reshard benchmark's speedup gate: the number that matters
// is goodput (committed events per simulated second) under abuse.

// ChaosBenchScale is the live-mode time scale of the large goodput runs.
const ChaosBenchScale = 50

// ChaosConfig parameterizes one chaos run.
type ChaosConfig struct {
	Seed          int64
	Txns          int
	BundlesPerTxn int
	Workers       int     // P3 commit-daemon pool size
	ClientConns   int     // concurrent client commits
	Scale         float64 // live-mode time scale; 0 uses ChaosBenchScale
	FromK         int     // starting topology (WAL and DB shards)
	ToK           int     // reshard target; == FromK skips the reshard phase
	FaultProb     float64 // per-request fault probability; 0 = fault-free twin
	ApplyProb     float64 // fraction of mutating faults that are ambiguous
	DupProb       float64 // queue duplicate-delivery probability
	Resilient     bool    // false = negative control: raw faults, no retries
	Queries       int     // measured scatter-gather fan-outs after settle
	// HedgeAfter overrides the resilient policy's hedge threshold (0 keeps
	// the default); both twins of an equivalence pair should use the same
	// value so the latency comparison is fair.
	HedgeAfter time.Duration
}

// ChaosRun is the measured outcome of one chaos configuration.
type ChaosRun struct {
	FaultProb     float64 `json:"fault_prob"`
	ApplyProb     float64 `json:"apply_prob"`
	DupProb       float64 `json:"dup_prob"`
	Resilient     bool    `json:"resilient"`
	FromK         int     `json:"from_k"`
	ToK           int     `json:"to_k"`
	Txns          int     `json:"txns"`
	BundlesPerTxn int     `json:"bundles_per_txn"`
	Events        int     `json:"events"`
	Workers       int     `json:"workers"`

	CommitErrors int    `json:"commit_errors"` // failed client commits (negative control)
	FirstError   string `json:"first_error,omitempty"`

	SimSeconds  float64 `json:"sim_seconds"` // commit+reshard+settle, simulated
	WallSeconds float64 `json:"wall_seconds"`
	Goodput     float64 `json:"goodput_events_per_sim_sec"`

	QueryP50Ms float64 `json:"query_p50_ms"` // scatter-gather fan-out, simulated
	QueryP99Ms float64 `json:"query_p99_ms"`

	Faults        int64 `json:"faults"` // injected by the plan
	Retries       int64 `json:"retries"`
	Hedges        int64 `json:"hedges"`
	BreakerOpens  int64 `json:"breaker_opens"`
	BudgetDenials int64 `json:"budget_denials"`

	ItemCount  int     `json:"item_count"`
	Misplaced  int     `json:"misplaced"`
	Duplicates int     `json:"duplicates"`
	TotalOps   int64   `json:"total_ops"`
	CostUSD    float64 `json:"cost_usd"`
	ProvDigest string  `json:"prov_digest"`
}

// ChaosCommitQueryReshard runs one chaos configuration: commit half the
// transaction set, grow the fabric FromK→ToK while the other half commits,
// settle, then measure Queries scatter-gather fan-outs and digest every
// object's read-back provenance. With Resilient false it degenerates to the
// negative control — clients face raw injected faults with no retry layer,
// no commit daemon runs, and the run returns after the commit phase with
// the error count (completing the workload would stall: a faulted fabric
// without retries never drains).
func ChaosCommitQueryReshard(c ChaosConfig) (ChaosRun, error) {
	if c.ClientConns <= 0 {
		c.ClientConns = 64
	}
	if c.Scale == 0 {
		c.Scale = ChaosBenchScale
	}
	if c.Queries <= 0 {
		c.Queries = 20
	}
	set := commitPipeTxns(c.Seed, c.Txns, c.BundlesPerTxn)
	runtime.GC() // keep allocator debt out of the scaled-time measurement

	cfg := sim.DefaultConfig()
	cfg.Seed = c.Seed
	cfg.TimeScale = c.Scale
	cfg.Consistency = sim.Strict // isolate chaos timing from staleness retries
	cfg.DupProb = c.DupProb
	env := sim.NewEnv(cfg)
	dep := core.NewShardedDeployment(env, core.Topology{WALShards: c.FromK, DBShards: c.FromK})
	switch {
	case !c.Resilient:
		dep.SetResilience(nil)
	case c.HedgeAfter != 0:
		dep.SetResilience(resilient.New(env, resilient.Policy{HedgeAfter: c.HedgeAfter}))
	}
	if c.FaultProb > 0 {
		env.InstallFaults(sim.UniformPlan(c.FaultProb, c.ApplyProb))
	}
	p3 := core.NewP3(dep, core.Options{CommitWorkers: c.Workers})

	run := ChaosRun{
		FaultProb: c.FaultProb, ApplyProb: c.ApplyProb, DupProb: c.DupProb,
		Resilient: c.Resilient, FromK: c.FromK, ToK: c.ToK,
		Txns: c.Txns, BundlesPerTxn: c.BundlesPerTxn, Events: c.Txns * c.BundlesPerTxn,
		Workers: c.Workers,
	}

	wall0 := time.Now()
	commitBatch := func(batch []pipeTxn) (nerr int, first error) {
		sem := make(chan struct{}, c.ClientConns)
		errs := make(chan error, len(batch))
		for i := range batch {
			tx := &batch[i]
			sem <- struct{}{}
			go func() {
				defer func() { <-sem }()
				errs <- p3.Commit(tx.obj, tx.bundles)
			}()
		}
		for range batch {
			if err := <-errs; err != nil {
				nerr++
				if first == nil {
					first = err
				}
			}
		}
		return nerr, first
	}

	// Negative control: no daemon, no settle (neither terminates against a
	// faulted fabric with no retry layer) — just the raw commit phase.
	if !c.Resilient {
		t0 := env.Now()
		nerr, first := commitBatch(set)
		run.CommitErrors = nerr
		if first != nil {
			run.FirstError = first.Error()
		}
		run.SimSeconds = (env.Now() - t0).Seconds()
		run.WallSeconds = time.Since(wall0).Seconds()
		run.Faults = env.Meter().Usage().Faults
		return run, nil
	}

	// The commit-daemon pool drains the WAL while the clients log, exactly
	// as in the reshard benchmark; always joined on the way out.
	stopDaemon := make(chan struct{})
	daemonDone := make(chan struct{})
	go func() {
		defer close(daemonDone)
		p3.RunDaemon(stopDaemon, time.Second)
	}()
	var stopOnce sync.Once
	stop := func() {
		stopOnce.Do(func() {
			close(stopDaemon)
			<-daemonDone
		})
	}
	defer stop()

	t0 := env.Now()
	half := len(set) / 2
	if nerr, first := commitBatch(set[:half]); first != nil {
		return run, fmt.Errorf("bench: %d commits failed under faults: %w", nerr, first)
	}
	if err := p3.Settle(); err != nil {
		return run, err
	}

	// Second half commits while the fabric resharded underneath it, under
	// the same fault plan — copies, cutover and GC all retry.
	type reshardResult struct {
		err error
	}
	resCh := make(chan reshardResult, 1)
	if c.ToK != c.FromK {
		go func() {
			_, err := dep.Reshard(context.Background(), core.Topology{WALShards: c.ToK, DBShards: c.ToK})
			resCh <- reshardResult{err: err}
		}()
	} else {
		resCh <- reshardResult{}
	}
	nerr, first := commitBatch(set[half:])
	res := <-resCh
	if first != nil {
		return run, fmt.Errorf("bench: %d commits failed under faults: %w", nerr, first)
	}
	if res.err != nil {
		return run, fmt.Errorf("bench: reshard under faults: %w", res.err)
	}
	if err := p3.Settle(); err != nil {
		return run, err
	}
	run.SimSeconds = (env.Now() - t0).Seconds()
	if run.SimSeconds > 0 {
		run.Goodput = float64(run.Events) / run.SimSeconds
	}

	// Measured fan-outs: full scatter-gather SELECTs across the grown
	// fabric, each hedged per shard. Every fan-out must return the complete
	// item set — a lost item would shrink the result, a duplicated one
	// would grow it.
	lat := make([]time.Duration, 0, c.Queries)
	for i := 0; i < c.Queries; i++ {
		q0 := env.Now()
		items, _, _, err := dep.DB.View().SelectAll("select itemName() from " + core.DomainName)
		if err != nil {
			return run, fmt.Errorf("bench: fan-out %d under faults: %w", i, err)
		}
		lat = append(lat, env.Now()-q0)
		if len(items) != run.Events {
			return run, fmt.Errorf("bench: fan-out %d returned %d items, want %d", i, len(items), run.Events)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	run.QueryP50Ms = float64(lat[len(lat)/2].Microseconds()) / 1e3
	run.QueryP99Ms = float64(lat[len(lat)*99/100].Microseconds()) / 1e3

	stop()
	if err := p3.Settle(); err != nil {
		return run, err
	}
	run.WallSeconds = time.Since(wall0).Seconds()

	usage := env.Meter().Usage()
	run.TotalOps = usage.TotalOps
	run.CostUSD = usage.Cost(cfg.StorageWindow)
	run.Faults = usage.Faults
	if dep.Res != nil {
		st := dep.Res.Stats().Totals()
		run.Retries, run.Hedges = st.Retries, st.Hedges
		run.BreakerOpens, run.BudgetDenials = st.BreakerOpens, st.BudgetDenials
	}

	// Verification outside the measurement, on an instant clock: exact item
	// count, placement audit, and the content digest the equivalence gate
	// compares against the fault-free twin.
	env.Clock().SetScale(0)
	run.ItemCount = dep.DB.ItemCount()
	mis, dup, err := core.AuditFabric(dep)
	if err != nil {
		return run, fmt.Errorf("bench: fabric audit under faults: %w", err)
	}
	run.Misplaced, run.Duplicates = mis, dup
	h := sha256.New()
	for i := range set {
		for _, u := range []uuid.UUID{set[i].file, set[i].proc} {
			bundles, err := core.ReadProvenance(dep, core.BackendSDB, u)
			if err != nil {
				return run, fmt.Errorf("bench: read-back of %s: %w", u, err)
			}
			h.Write(prov.EncodeBundles(bundles))
		}
		o, err := dep.Store.Get(core.DataKey(set[i].obj.Path))
		if err != nil {
			return run, fmt.Errorf("bench: data of %s: %w", set[i].obj.Path, err)
		}
		h.Write([]byte(o.Metadata["prov-uuid"] + "/" + o.Metadata["prov-version"]))
	}
	run.ProvDigest = hex.EncodeToString(h.Sum(nil))

	// A chaos run ends as clean as a calm one.
	if n := dep.WAL.Len(); n != 0 {
		return run, fmt.Errorf("bench: %d WAL messages left after settle", n)
	}
	if keys, _, _ := dep.Store.ListAll(core.TmpPrefix); len(keys) != 0 {
		return run, fmt.Errorf("bench: %d temp objects leaked", len(keys))
	}
	if n := p3.PendingTxns(); n != 0 {
		return run, fmt.Errorf("bench: %d transactions still pending", n)
	}
	return run, nil
}
