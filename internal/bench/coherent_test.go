package bench

import "testing"

// coherentCheck runs one coherent-reads configuration and applies the
// invariants that must hold at any scale: the subscribed and flush-per-round
// strategies match the uncached baseline byte for byte, the stale negative
// control demonstrably does not, the coherence machinery actually fired, and
// every pushdown case streams identical results while examining no more
// items (strictly fewer in at least one case).
func coherentCheck(t *testing.T, c CoherentReadsConfig) CoherentReadsRun {
	t.Helper()
	run, err := CoherentReads(c)
	if err != nil {
		t.Fatal(err)
	}
	base := run.Modes["uncached"]
	if base.Digest == "" || base.Results == 0 {
		t.Fatalf("uncached baseline empty: %+v", base)
	}
	for _, mode := range []string{"subscribed", "flush"} {
		if d := run.Modes[mode].Digest; d != base.Digest {
			t.Errorf("%s diverged from uncached: %s vs %s", mode, d, base.Digest)
		}
	}
	if run.Modes["stale"].Digest == base.Digest {
		t.Error("stale negative control matched the baseline — the workload is not exercising coherence")
	}
	sub := run.Modes["subscribed"]
	if sub.Invalidations == 0 {
		t.Error("subscribed cache recorded no invalidations")
	}
	if sub.CoherenceHits == 0 {
		t.Error("subscribed cache recorded no coherence hits")
	}
	if sub.SubscriptionLag != 0 {
		t.Errorf("synchronous bus left subscription lag %d", sub.SubscriptionLag)
	}
	if run.CommitNotices == 0 {
		t.Error("no commit notices were published")
	}
	if len(run.Pushdown) == 0 {
		t.Fatal("no pushdown cases ran")
	}
	strict := false
	for _, pc := range run.Pushdown {
		if !pc.Identical {
			t.Errorf("pushdown case %s changed the result stream", pc.Name)
		}
		if pc.ExaminedOn > pc.ExaminedOff {
			t.Errorf("pushdown case %s examined MORE items: %d on vs %d off",
				pc.Name, pc.ExaminedOn, pc.ExaminedOff)
		}
		if pc.ExaminedOn < pc.ExaminedOff {
			strict = true
		}
		t.Logf("pushdown %-18s examined %d -> %d, selects %d -> %d (%s)",
			pc.Name, pc.ExaminedOff, pc.ExaminedOn, pc.SelectsOff, pc.SelectsOn, pc.Plan)
	}
	if !strict {
		t.Error("no pushdown case reduced items examined")
	}
	t.Logf("read cost: uncached %.4fs, subscribed %.4fs (%.2fx), flush %.4fs; sub hits=%d inval=%d",
		base.SimSeconds, sub.SimSeconds, run.CostRatio("subscribed"),
		run.Modes["flush"].SimSeconds, sub.CoherenceHits, sub.Invalidations)
	return run
}

// TestCoherentReadsIdentical is the always-on correctness check at small
// scale.
func TestCoherentReadsIdentical(t *testing.T) {
	coherentCheck(t, CoherentReadsConfig{Seed: 23, Rounds: 3, TxnsPerRound: 4, Depth: 3})
}

// TestCoherentReadsGate is the acceptance gate at scale: under continuous
// ingest the warm subscribed cache must serve the byte-identical query
// stream at >= 2x lower simulated read cost than the uncached baseline, and
// every pushdown case must reduce what the SELECTs examine.
func TestCoherentReadsGate(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N benchmark")
	}
	run := coherentCheck(t, CoherentReadsConfig{
		Seed: 23, Rounds: 10, TxnsPerRound: 24, Depth: 6, Workers: 8, DBShards: 4,
	})
	if r := run.CostRatio("subscribed"); r < 2 {
		t.Errorf("subscribed read cost ratio %.2fx, want >= 2x", r)
	}
	for _, pc := range run.Pushdown {
		if pc.ExaminedOn >= pc.ExaminedOff {
			t.Errorf("pushdown case %s did not reduce items examined at scale: %d on vs %d off",
				pc.Name, pc.ExaminedOn, pc.ExaminedOff)
		}
	}
}
