package bench

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
	"passcloud/internal/uuid"
)

// The live-reshard benchmark: run the commit-pipeline workload through P3
// in three phases — warm-up on the starting topology, a middle batch
// committed *while* core.Reshard grows the fabric, and a post-reshard
// batch on the grown topology — and compare the post-phase simulated
// commit time against a control run that stays on the starting topology.
// The run fails outright if the migration loses or duplicates a single
// provenance item (exact item count + placement audit), and the digest of
// every object's read-back provenance must be byte-identical to a static
// deployment of the target size.

// ReshardBenchScale is the live-mode time scale: the same gate-dominated
// regime as the sharded-write benchmark, so modelled service latency — not
// host compute — dominates the phase timings.
const ReshardBenchScale = 50

// ReshardRun is one measured configuration of the reshard benchmark.
type ReshardRun struct {
	FromK         int     `json:"from_k"`
	ToK           int     `json:"to_k"`
	Resharded     bool    `json:"resharded"` // false = control run, topology fixed at FromK
	Txns          int     `json:"txns"`
	BundlesPerTxn int     `json:"bundles_per_txn"`
	Events        int     `json:"events"`
	Workers       int     `json:"workers"`
	PreSimSecs    float64 `json:"pre_sim_seconds"`    // phase A: warm-up batch
	DuringSimSecs float64 `json:"during_sim_seconds"` // phase B: batch racing the reshard
	PostSimSecs   float64 `json:"post_sim_seconds"`   // phase C: batch after cutover+GC
	WallSeconds   float64 `json:"wall_seconds"`
	CopiedItems   int     `json:"copied_items"`
	GCItems       int     `json:"gc_items"`
	WALMigrated   int     `json:"wal_migrated"`
	Epoch         int     `json:"epoch"`
	ItemCount     int     `json:"item_count"`
	Misplaced     int     `json:"misplaced"`
	Duplicates    int     `json:"duplicates"`
	TotalOps      int64   `json:"total_ops"`
	CostUSD       float64 `json:"cost_usd"`
	ProvDigest    string  `json:"prov_digest"`
}

// ReshardUnderLoad measures one configuration. The transaction set splits
// into three equal phases; when reshard is true the fabric grows fromK→toK
// concurrently with phase B's commits. scale 0 uses ReshardBenchScale.
func ReshardUnderLoad(seed int64, txns, bundlesPerTxn, workers, clientConns int, scale float64, fromK, toK int, reshard bool) (ReshardRun, error) {
	if clientConns <= 0 {
		clientConns = 64
	}
	if scale == 0 {
		scale = ReshardBenchScale
	}
	set := commitPipeTxns(seed, txns, bundlesPerTxn)
	runtime.GC() // keep allocator debt out of the scaled-time measurement

	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.TimeScale = scale
	cfg.Consistency = sim.Strict // isolate commit timing from staleness retries
	env := sim.NewEnv(cfg)
	dep := core.NewShardedDeployment(env, core.Topology{WALShards: fromK, DBShards: fromK})
	p3 := core.NewP3(dep, core.Options{CommitWorkers: workers})

	// The daemon pool is always joined on the way out — error paths
	// included — so no run leaks goroutines spinning against its env.
	stopDaemon := make(chan struct{})
	daemonDone := make(chan struct{})
	go func() {
		defer close(daemonDone)
		p3.RunDaemon(stopDaemon, time.Second)
	}()
	var stopOnce sync.Once
	stop := func() {
		stopOnce.Do(func() {
			close(stopDaemon)
			<-daemonDone
		})
	}
	defer stop()

	wall0 := time.Now()
	commitBatch := func(batch []pipeTxn) error {
		sem := make(chan struct{}, clientConns)
		errs := make(chan error, len(batch))
		for i := range batch {
			tx := &batch[i]
			sem <- struct{}{}
			go func() {
				defer func() { <-sem }()
				errs <- p3.Commit(tx.obj, tx.bundles)
			}()
		}
		var firstErr error
		for range batch {
			if err := <-errs; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	third := len(set) / 3
	phaseA, phaseB, phaseC := set[:third], set[third:2*third], set[2*third:]
	run := ReshardRun{
		FromK: fromK, ToK: toK, Resharded: reshard,
		Txns: txns, BundlesPerTxn: bundlesPerTxn, Events: txns * bundlesPerTxn,
		Workers: workers,
	}

	// Phase A: warm-up on the starting topology.
	t0 := env.Now()
	if err := commitBatch(phaseA); err != nil {
		return run, err
	}
	if err := p3.Settle(); err != nil {
		return run, err
	}
	run.PreSimSecs = (env.Now() - t0).Seconds()

	// Phase B: ingest continues while the fabric resharded underneath it.
	// The reshard goroutine is always joined (stats travel over the
	// channel, never through shared writes) before any return below.
	t0 = env.Now()
	type reshardResult struct {
		stats core.ReshardStats
		err   error
	}
	resCh := make(chan reshardResult, 1)
	if reshard {
		go func() {
			stats, err := dep.Reshard(context.Background(), core.Topology{WALShards: toK, DBShards: toK})
			resCh <- reshardResult{stats: stats, err: err}
		}()
	} else {
		resCh <- reshardResult{}
	}
	batchErr := commitBatch(phaseB)
	res := <-resCh
	if batchErr != nil {
		return run, batchErr
	}
	if res.err != nil {
		return run, res.err
	}
	run.CopiedItems, run.GCItems = res.stats.CopiedItems, res.stats.GCItems
	run.WALMigrated, run.Epoch = res.stats.WALMigrated, res.stats.Epoch
	if err := p3.Settle(); err != nil {
		return run, err
	}
	run.DuringSimSecs = (env.Now() - t0).Seconds()

	// Phase C: the post-reshard regime the speedup gate measures.
	t0 = env.Now()
	if err := commitBatch(phaseC); err != nil {
		return run, err
	}
	if err := p3.Settle(); err != nil {
		return run, err
	}
	run.PostSimSecs = (env.Now() - t0).Seconds()

	stop()
	if err := p3.Settle(); err != nil {
		return run, err
	}
	run.WallSeconds = time.Since(wall0).Seconds()

	usage := env.Meter().Usage()
	run.TotalOps = usage.TotalOps
	run.CostUSD = usage.Cost(cfg.StorageWindow)

	// Verification, outside the measurement on an instant clock: exact item
	// count (nothing lost, nothing duplicated), every item on exactly its
	// home shard, and the read-back digest.
	env.Clock().SetScale(0)
	run.ItemCount = dep.DB.ItemCount()
	mis, dup, err := core.AuditFabric(dep)
	if err != nil {
		return run, fmt.Errorf("bench: fabric audit: %w", err)
	}
	run.Misplaced, run.Duplicates = mis, dup
	h := sha256.New()
	for i := range set {
		for _, u := range []uuid.UUID{set[i].file, set[i].proc} {
			bundles, err := core.ReadProvenance(dep, core.BackendSDB, u)
			if err != nil {
				return run, fmt.Errorf("bench: read-back of %s: %w", u, err)
			}
			h.Write(prov.EncodeBundles(bundles))
		}
		o, err := dep.Store.Get(core.DataKey(set[i].obj.Path))
		if err != nil {
			return run, fmt.Errorf("bench: data of %s: %w", set[i].obj.Path, err)
		}
		h.Write([]byte(o.Metadata["prov-uuid"] + "/" + o.Metadata["prov-version"]))
	}
	run.ProvDigest = hex.EncodeToString(h.Sum(nil))

	// A clean fabric leaves nothing behind on any shard.
	if n := dep.WAL.Len(); n != 0 {
		return run, fmt.Errorf("bench: %d WAL messages left after settle", n)
	}
	if keys, _, _ := dep.Store.ListAll(core.TmpPrefix); len(keys) != 0 {
		return run, fmt.Errorf("bench: %d temp objects leaked", len(keys))
	}
	if n := p3.PendingTxns(); n != 0 {
		return run, fmt.Errorf("bench: %d transactions still pending", n)
	}
	return run, nil
}
