package bench

import (
	"time"

	"passcloud/internal/core"
	"passcloud/internal/pasfs"
	"passcloud/internal/pass"
	"passcloud/internal/query"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// Table 5 of the paper: the four queries of §5.3 over the Blast workload's
// provenance, on the S3 backend (P1) and the SimpleDB backend (P2/P3),
// sequentially and in parallel, reporting time, data transferred and
// request counts.

// Table5Row is one (query, backend) cell group.
type Table5Row struct {
	Query      string
	Backend    string
	Sequential time.Duration
	Parallel   time.Duration // zero when no parallel plan exists
	MB         float64
	Ops        int64
}

// Table5Scale is the live time scale for the query measurements: Q1's
// sequential S3 plan issues ≈30 ms requests, which at scale 15 sleep ≈2 ms
// of real time each.
const Table5Scale = 15

// Table5Workers is the fan-out of the parallel plans.
const Table5Workers = 16

// populate replays the Blast workload through the given protocol so the
// deployment holds the full provenance set. Population runs with the clock
// in manual mode (instant); the caller switches the clock live before
// measuring queries.
func populate(protoName string, seed int64) (*core.Deployment, core.Backend, string, error) {
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.TimeScale = 0            // manual: population is setup, not measurement
	cfg.Consistency = sim.Strict // isolate query timing from staleness retries
	env := sim.NewEnv(cfg)
	dep := core.NewDeployment(env)
	proto, err := newProtocol(protoName, dep, core.Options{})
	if err != nil {
		return nil, 0, "", err
	}
	col := pass.New(env.Rand(), nil)
	fs := pasfs.New(env, proto, col, pasfs.Config{Collect: true, AsyncCommits: true, MaxInflight: 16})
	w := workload.Blast(sim.NewRand(seed))
	if err := fs.Run(w.Trace); err != nil {
		return nil, 0, "", err
	}
	if err := proto.Settle(); err != nil {
		return nil, 0, "", err
	}
	return dep, core.BackendOf(proto), w.Program, nil
}

// Table5 runs the four queries against both backends.
func Table5(seed int64, scale float64) ([]Table5Row, error) {
	if scale == 0 {
		scale = Table5Scale
	}
	var rows []Table5Row
	for _, be := range []struct {
		proto string
		label string
	}{
		{"P1", "S3"},
		{"P3", "SimpleDB"},
	} {
		dep, backend, program, err := populate(be.proto, seed)
		if err != nil {
			return nil, err
		}
		dep.Env.Clock().SetScale(scale) // measure queries live
		e := query.New(dep, backend)

		// Q1: all provenance, sequential then parallel (the SimpleDB plan
		// is inherently sequential — paged SELECT — so only S3 differs).
		_, mSeq, err := e.AllProvenance(1)
		if err != nil {
			return nil, err
		}
		par := time.Duration(0)
		if backend == core.BackendS3 {
			_, mPar, err := e.AllProvenance(Table5Workers)
			if err != nil {
				return nil, err
			}
			par = mPar.Elapsed
		}
		rows = append(rows, Table5Row{
			Query: "Q1", Backend: be.label,
			Sequential: mSeq.Elapsed, Parallel: par,
			MB: float64(mSeq.Bytes) / (1 << 20), Ops: mSeq.Ops,
		})

		// Q2: per-object provenance; inherently sequential (HEAD then
		// fetch). Reported per object, as in the paper.
		_, mQ2, err := e.ObjectProvenance("mnt/out/hits042.txt")
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Query: "Q2", Backend: be.label,
			Sequential: mQ2.Elapsed,
			MB:         float64(mQ2.Bytes) / (1 << 20), Ops: mQ2.Ops,
		})

		// Q3: direct outputs of Blast.
		_, m3s, err := e.DirectOutputsOf(program, 1)
		if err != nil {
			return nil, err
		}
		_, m3p, err := e.DirectOutputsOf(program, Table5Workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Query: "Q3", Backend: be.label,
			Sequential: m3s.Elapsed, Parallel: m3p.Elapsed,
			MB: float64(m3s.Bytes) / (1 << 20), Ops: m3s.Ops,
		})

		// Q4: all descendants.
		_, m4s, err := e.DescendantsOf(program, 1)
		if err != nil {
			return nil, err
		}
		_, m4p, err := e.DescendantsOf(program, Table5Workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Query: "Q4", Backend: be.label,
			Sequential: m4s.Elapsed, Parallel: m4p.Elapsed,
			MB: float64(m4s.Bytes) / (1 << 20), Ops: m4s.Ops,
		})
	}
	return rows, nil
}
