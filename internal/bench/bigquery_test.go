package bench

import "testing"

// TestBigQueryIndexSpeedup is the acceptance check for the indexed SELECT
// engine: on a 100k-item domain, every Table-5-style query must cost at
// least 10× less simulated time through the indexes than through the seed's
// full scan, with identical results. Simulated times are deterministic
// (manual clock, strict consistency, fixed seed), so the ratio is exact.
func TestBigQueryIndexSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N benchmark")
	}
	const (
		items  = 100_000
		chains = 64
		depth  = 12
	)
	indexed, err := BigQuery(21, items, chains, depth, false)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := BigQuery(21, items, chains, depth, true)
	if err != nil {
		t.Fatal(err)
	}

	var wallIdx, wallScan float64
	for _, name := range []string{"equality", "versions", "direct-out", "descendants"} {
		ci, cs := indexed.Cell(name), scan.Cell(name)
		if ci.Query == "" || cs.Query == "" {
			t.Fatalf("missing cell %q", name)
		}
		// Identical results and request counts: the index changes the access
		// path, not SELECT semantics or billing.
		if ci.Results != cs.Results || ci.Results == 0 {
			t.Errorf("%s: results indexed=%d scan=%d, want equal and nonzero", name, ci.Results, cs.Results)
		}
		if ci.Ops != cs.Ops {
			t.Errorf("%s: ops indexed=%d scan=%d, want equal", name, ci.Ops, cs.Ops)
		}
		if cs.SimSeconds < 10*ci.SimSeconds {
			t.Errorf("%s: simulated %0.3fs scan vs %0.3fs indexed — speedup %.1fx, want ≥10x",
				name, cs.SimSeconds, ci.SimSeconds, cs.SimSeconds/ci.SimSeconds)
		}
		wallIdx += ci.WallSeconds
		wallScan += cs.WallSeconds
	}
	// Wall-clock is noisy on loaded machines, so the in-test bar is only an
	// ordering (the measured ratio is ≥100× on an idle machine — the scan
	// path evaluates 100k items per SELECT); BENCH_indexed_select.json
	// records the full comparison.
	t.Logf("wall-clock: scan %.3fs vs indexed %.3fs (%.0fx)", wallScan, wallIdx, wallScan/wallIdx)
	if wallScan <= wallIdx {
		t.Errorf("scan path (%.3fs) not slower than indexed path (%.3fs) in wall-clock",
			wallScan, wallIdx)
	}

	// Expected result shapes: every chain head is a direct output; the
	// whole chain set is the descendant closure.
	if got := indexed.Cell("direct-out").Results; got != chains {
		t.Errorf("direct-out results = %d, want %d", got, chains)
	}
	if got := indexed.Cell("descendants").Results; got != chains*depth {
		t.Errorf("descendants results = %d, want %d", got, chains*depth)
	}
}
