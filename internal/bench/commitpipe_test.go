package bench

import "testing"

// commitPipeCompare runs the benchmark's two modes on the same transaction
// set and applies the invariants that must hold at any scale: byte-identical
// recorded provenance and strictly cheaper pipeline execution.
func commitPipeCompare(t *testing.T, txns, bundlesPerTxn, workers int) (serial, pipe CommitPipeRun) {
	t.Helper()
	serial, err := CommitPipeline(7, txns, bundlesPerTxn, 1, 64, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err = CommitPipeline(7, txns, bundlesPerTxn, workers, 64, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if serial.ProvDigest != pipe.ProvDigest || serial.ProvDigest == "" {
		t.Fatalf("recorded provenance differs: serial %s vs pipeline %s", serial.ProvDigest, pipe.ProvDigest)
	}
	if pipe.CostUSD >= serial.CostUSD {
		t.Errorf("pipeline cost $%.4f not below serial $%.4f", pipe.CostUSD, serial.CostUSD)
	}
	t.Logf("serial:   sim=%.1fs wall=%.2fs sqs=%d sdb-batches=%d $%.4f",
		serial.SimSeconds, serial.WallSeconds, serial.SQSRequests, serial.SDBBatchCalls, serial.CostUSD)
	t.Logf("pipeline: sim=%.1fs wall=%.2fs sqs=%d sdb-batches=%d $%.4f (%.1fx sim, %.1fx fewer SQS requests)",
		pipe.SimSeconds, pipe.WallSeconds, pipe.SQSRequests, pipe.SDBBatchCalls, pipe.CostUSD,
		serial.SimSeconds/pipe.SimSeconds, float64(serial.SQSRequests)/float64(pipe.SQSRequests))
	return serial, pipe
}

// TestCommitPipelineIdentical is the always-on correctness check: a small
// transaction set committed through both paths lands byte-identically.
func TestCommitPipelineIdentical(t *testing.T) {
	commitPipeCompare(t, 24, 16, 4)
}

// TestCommitPipelineSpeedup is the acceptance check for the batched commit
// pipeline at full scale: ≥50k provenance events, ≥5x fewer SQS requests
// and ≥3x less simulated commit+settle time than the seed's serial path,
// with byte-identical provenance read back through ReadProvenance.
func TestCommitPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N benchmark")
	}
	const (
		txns          = 790
		bundlesPerTxn = 64 // 50,560 events, ≈8 WAL chunks per transaction
		workers       = 8
	)
	serial, pipe := commitPipeCompare(t, txns, bundlesPerTxn, workers)
	if serial.Events < 50_000 {
		t.Fatalf("only %d events, want >= 50000", serial.Events)
	}
	if float64(serial.SQSRequests) < 5*float64(pipe.SQSRequests) {
		t.Errorf("SQS requests: serial %d vs pipeline %d — %.1fx, want >= 5x",
			serial.SQSRequests, pipe.SQSRequests, float64(serial.SQSRequests)/float64(pipe.SQSRequests))
	}
	if serial.SimSeconds < 3*pipe.SimSeconds {
		t.Errorf("simulated time: serial %.1fs vs pipeline %.1fs — %.1fx, want >= 3x",
			serial.SimSeconds, pipe.SimSeconds, serial.SimSeconds/pipe.SimSeconds)
	}
	// Coalescing across transactions must produce fuller batches: fewer
	// BatchPutAttributes calls for the same item count.
	if pipe.SDBBatchCalls >= serial.SDBBatchCalls {
		t.Errorf("batch calls: pipeline %d not below serial %d", pipe.SDBBatchCalls, serial.SDBBatchCalls)
	}
}
