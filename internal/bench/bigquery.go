package bench

import (
	"fmt"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/prov"
	"passcloud/internal/query"
	"passcloud/internal/sim"
	"passcloud/internal/uuid"
)

// The large-N query benchmark: Table-5-style equality and traversal queries
// over a provenance-shaped SimpleDB domain of ≥100k items, run once through
// the indexed SELECT engine and once with the indexes disabled (the seed
// implementation's full-scan behaviour). The comparison demonstrates that
// provenance reads — the bottleneck at the ROADMAP's millions-of-objects
// scale — cost time proportional to the result, not the domain.

// BigQueryCell is one measured query of the large-N benchmark.
type BigQueryCell struct {
	Query       string  `json:"query"`
	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	Ops         int64   `json:"ops"`
	Results     int     `json:"results"`
}

// BigQueryRun is one full pass over the query set.
type BigQueryRun struct {
	Items     int            `json:"items"`
	Chains    int            `json:"chains"`
	Depth     int            `json:"depth"`
	ForceScan bool           `json:"force_scan"`
	Cells     []BigQueryCell `json:"cells"`
}

// Cell returns the named cell (zero value when absent).
func (r BigQueryRun) Cell(name string) BigQueryCell {
	for _, c := range r.Cells {
		if c.Query == name {
			return c
		}
	}
	return BigQueryCell{}
}

// BigQuery populates a domain with items items — chains derivation chains
// of the given depth rooted at one process of program "bigprog", padded
// with unrelated noise files — and measures four Table-5-style queries:
//
//	equality     FindByAttr on one file name (Q3's lookup shape);
//	versions     ReadProvenance of one uuid (Q2's per-object shape);
//	direct-out   Q3, the direct outputs of the program;
//	descendants  Q4, the BFS transitive closure from the program.
//
// forceScan disables the secondary indexes for the comparison run. The
// environment is strict-consistency on a manual clock, so simulated times
// are deterministic for a given seed.
func BigQuery(seed int64, items, chains, depth int, forceScan bool) (BigQueryRun, error) {
	if items < chains*depth+1 {
		return BigQueryRun{}, fmt.Errorf("bench: %d items cannot hold %d chains of depth %d", items, chains, depth)
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.Consistency = sim.Strict // isolate query timing from staleness retries
	env := sim.NewEnv(cfg)
	dep := core.NewDeployment(env)
	dep.DB.SetForceScan(forceScan)
	rnd := sim.NewRand(seed)

	newRef := func() prov.Ref { return prov.Ref{UUID: uuid.New(rnd), Version: 1} }
	var reqs []core.ItemSpec

	procRef := newRef()
	reqs = append(reqs, core.ItemSpec{Ref: procRef, Type: "proc", Name: "bigprog"})

	var probeRef prov.Ref // a mid-chain file for the targeted queries
	for c := 0; c < chains; c++ {
		parent := procRef
		for l := 0; l < depth; l++ {
			ref := newRef()
			reqs = append(reqs, core.ItemSpec{
				Ref:   ref,
				Type:  "file",
				Name:  fmt.Sprintf("mnt/big/c%04d/f%02d", c, l),
				Input: parent.String(),
			})
			parent = ref
		}
		if c == 0 {
			probeRef = parent
		}
	}
	for len(reqs) < items {
		reqs = append(reqs, core.ItemSpec{
			Ref:  newRef(),
			Type: "file",
			Name: fmt.Sprintf("mnt/noise/%07d", len(reqs)),
		})
	}
	if err := core.PopulateItems(dep.DB, reqs); err != nil {
		return BigQueryRun{}, err
	}
	// Warm the sorted name table (built lazily after bulk population) so the
	// first measured query does not absorb the one-time sort in either run.
	if _, err := dep.DB.Select("select itemName() from "+core.DomainName+" limit 1", ""); err != nil {
		return BigQueryRun{}, err
	}

	run := BigQueryRun{Items: items, Chains: chains, Depth: depth, ForceScan: forceScan}
	measure := func(name string, f func() (int, error)) error {
		ops0 := env.Meter().Usage().TotalOps
		sim0 := env.Now()
		wall0 := time.Now()
		n, err := f()
		if err != nil {
			return fmt.Errorf("bench: big query %s: %w", name, err)
		}
		run.Cells = append(run.Cells, BigQueryCell{
			Query:       name,
			SimSeconds:  (env.Now() - sim0).Seconds(),
			WallSeconds: time.Since(wall0).Seconds(),
			Ops:         env.Meter().Usage().TotalOps - ops0,
			Results:     n,
		})
		return nil
	}

	e := query.New(dep, core.BackendSDB)
	steps := []struct {
		name string
		f    func() (int, error)
	}{
		{"equality", func() (int, error) {
			// FindByAttr's shape as a Spec: one indexed SELECT, no traversal.
			refs, err := e.CollectRefs(query.Spec{
				Roots:     query.Roots{Attrs: []query.AttrMatch{{Attr: prov.AttrName, Value: "mnt/big/c0000/f05"}}},
				Direction: query.Self,
			})
			return len(refs), err
		}},
		{"versions", func() (int, error) {
			// ReadProvenance's shape as a Spec: a routed single-shard prefix
			// SELECT over the uuid's version items.
			bundles, err := e.CollectBundles(query.Spec{
				Roots:     query.Roots{UUIDs: []uuid.UUID{probeRef.UUID}},
				Direction: query.Versions,
			})
			return len(bundles), err
		}},
		{"direct-out", func() (int, error) {
			refs, _, err := e.DirectOutputsOf("bigprog", 1)
			return len(refs), err
		}},
		{"descendants", func() (int, error) {
			refs, _, err := e.DescendantsOf("bigprog", 1)
			return len(refs), err
		}},
	}
	for _, s := range steps {
		if err := measure(s.name, s.f); err != nil {
			return BigQueryRun{}, err
		}
	}
	return run, nil
}
