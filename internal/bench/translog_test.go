package bench

import "testing"

// translogPair returns the pinned tamper-detection configuration and its
// log-disabled twin. The logged run carries the full trust scenario: a 5%
// ambiguous fault plan and a live 1→4 reshard between the two commit
// phases, with the first-phase head kept as the witnessed checkpoint.
func translogPair() (logged, twin TamperConfig) {
	logged = TamperConfig{
		Seed:          41,
		Txns:          18,
		BundlesPerTxn: 12,
		Workers:       4,
		ClientConns:   32,
		Scale:         800,
		FromK:         1,
		ToK:           4,
		FaultProb:     0.05,
		ApplyProb:     0.5,
		LogEnabled:    true,
	}
	twin = logged
	twin.LogEnabled = false
	return logged, twin
}

// TestTamperDetection is the headline acceptance gate: with the sequencer
// attached, every committed transaction's inclusion proof verifies and every
// consecutive pair of signed heads proves consistent — through a live 1→4
// reshard, under the 5% fault plan — and a cold re-open rebuilds the
// identical signed head. Zero false positives.
func TestTamperDetection(t *testing.T) {
	cfg, _ := translogPair()
	run, err := TamperDetection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.ItemCount != run.Events || run.Misplaced != 0 || run.Duplicates != 0 {
		t.Fatalf("fabric mangled: items=%d/%d misplaced=%d duplicates=%d",
			run.ItemCount, run.Events, run.Misplaced, run.Duplicates)
	}
	if run.TreeSize != cfg.Txns {
		t.Fatalf("tree size = %d, want one leaf per transaction (%d)", run.TreeSize, cfg.Txns)
	}
	if run.InclusionVerified != cfg.Txns {
		t.Fatalf("inclusion proofs verified = %d, want %d", run.InclusionVerified, cfg.Txns)
	}
	if run.ConsistencyChecked == 0 || run.HeadsVerified == 0 {
		t.Fatalf("no head history checked: heads=%d consistency=%d", run.HeadsVerified, run.ConsistencyChecked)
	}
	if !run.AuditClean {
		t.Fatalf("false positives: audit not clean (%d proof failures, %d divergences)",
			run.ProofFailures, run.Divergences)
	}
	if !run.ReopenedOK {
		t.Fatal("cold re-open did not rebuild the identical signed head")
	}
	if run.Faults == 0 {
		t.Fatal("fault plan never fired; the gate is not exercising ambiguity")
	}
}

// TestTamperNegativeControl rewrites one committed bundle directly on its
// home shard after the final checkpoint: the audit must flag exactly that
// item as tampered, and nothing else.
func TestTamperNegativeControl(t *testing.T) {
	cfg, _ := translogPair()
	cfg.Tamper = true
	run, err := TamperDetection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !run.TamperFlagged {
		t.Fatal("rewritten bundle not flagged as tampered")
	}
	if run.AuditClean {
		t.Fatal("audit reported clean despite the rewrite")
	}
	if run.Divergences != 1 {
		t.Fatalf("divergences = %d, want exactly the rewritten item", run.Divergences)
	}
	if run.ProofFailures != 0 {
		t.Fatalf("proof failures = %d; a fabric rewrite must not break the log's own proofs", run.ProofFailures)
	}
	if run.InclusionVerified != cfg.Txns {
		t.Fatalf("inclusion proofs verified = %d, want %d", run.InclusionVerified, cfg.Txns)
	}
}

// TestTranslogOverhead is the performance gate: on a fault-free, fixed-
// topology workload, attaching the sequencer keeps the simulated client
// commit p99 within 1.3x of the log-disabled twin. Ingestion rides the
// synchronous commit bus, so this bounds the only work added to the commit
// path; checkpointing is asynchronous.
func TestTranslogOverhead(t *testing.T) {
	logged, twin := translogPair()
	for _, c := range []*TamperConfig{&logged, &twin} {
		c.Txns = 40
		c.BundlesPerTxn = 8
		c.FromK, c.ToK = 2, 2
		c.FaultProb, c.ApplyProb = 0, 0
	}
	lr, err := TamperDetection(logged)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TamperDetection(twin)
	if err != nil {
		t.Fatal(err)
	}
	if lr.CommitP99Ms > tr.CommitP99Ms*1.3 {
		t.Fatalf("logged commit p99 %.2fms exceeds 1.3x the log-disabled twin's %.2fms",
			lr.CommitP99Ms, tr.CommitP99Ms)
	}
	if !lr.AuditClean || lr.InclusionVerified != logged.Txns {
		t.Fatalf("overhead run lost trust guarantees: clean=%v inclusion=%d/%d",
			lr.AuditClean, lr.InclusionVerified, logged.Txns)
	}
	if tr.TreeSize != 0 || tr.LogAppends != 0 {
		t.Fatalf("log-disabled twin still logged: tree=%d appends=%d", tr.TreeSize, tr.LogAppends)
	}
	t.Logf("commit p99: logged %.2fms vs twin %.2fms (ratio %.2f)",
		lr.CommitP99Ms, tr.CommitP99Ms, lr.CommitP99Ms/tr.CommitP99Ms)
}
