package bench

import (
	"testing"

	"passcloud/internal/core"
)

// TestShardedWriteIdentical is the always-on correctness check: the same
// transaction set committed through K=1, K=2 and K=4 fabrics must land
// byte-identically — identical ReadProvenance digests regardless of how the
// items and WAL traffic were sharded.
func TestShardedWriteIdentical(t *testing.T) {
	var first ShardedWriteRun
	for i, k := range []int{1, 2, 4} {
		run, err := ShardedWrite(7, 24, 16, 4, 64, 800, core.Topology{WALShards: k, DBShards: k})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if run.ProvDigest == "" {
			t.Fatalf("K=%d: empty digest", k)
		}
		if i == 0 {
			first = run
			continue
		}
		if run.ProvDigest != first.ProvDigest {
			t.Errorf("K=%d digest %s differs from K=1 %s", k, run.ProvDigest, first.ProvDigest)
		}
	}
}

// TestShardedWriteSpeedup is the acceptance gate for the sharded fabric at
// full scale: on the 50k-event workload, K=4 WAL shards + K=4 domains must
// cut simulated commit-path time by ≥2x versus the K=1 topology while
// keeping billed requests in the same ballpark (sharding spreads load, it
// must not multiply requests) and provenance byte-identical.
func TestShardedWriteSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N benchmark")
	}
	const (
		txns          = 790
		bundlesPerTxn = 64 // 50,560 events
		workers       = 16
	)
	k1, err := ShardedWrite(7, txns, bundlesPerTxn, workers, 128, 0, core.Topology{WALShards: 1, DBShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	k4, err := ShardedWrite(7, txns, bundlesPerTxn, workers, 128, 0, core.Topology{WALShards: 4, DBShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("K=1: sim=%.1fs wall=%.2fs ops=%d sqs=%d sdb-batches=%d $%.4f",
		k1.SimSeconds, k1.WallSeconds, k1.TotalOps, k1.SQSRequests, k1.SDBBatchCalls, k1.CostUSD)
	t.Logf("K=4: sim=%.1fs wall=%.2fs ops=%d sqs=%d sdb-batches=%d $%.4f (%.1fx sim)",
		k4.SimSeconds, k4.WallSeconds, k4.TotalOps, k4.SQSRequests, k4.SDBBatchCalls, k4.CostUSD,
		k1.SimSeconds/k4.SimSeconds)
	if k1.Events < 50_000 {
		t.Fatalf("only %d events, want >= 50000", k1.Events)
	}
	if k1.ProvDigest != k4.ProvDigest || k1.ProvDigest == "" {
		t.Fatalf("provenance diverged across topologies: %s vs %s", k1.ProvDigest, k4.ProvDigest)
	}
	if k1.SimSeconds < 2*k4.SimSeconds {
		t.Errorf("simulated time: K=1 %.1fs vs K=4 %.1fs — %.2fx, want >= 2x",
			k1.SimSeconds, k4.SimSeconds, k1.SimSeconds/k4.SimSeconds)
	}
	// Sharding must spread requests, not multiply them: the billed request
	// count may only drift a little (shard-boundary batch splits).
	if float64(k4.TotalOps) > 1.15*float64(k1.TotalOps) {
		t.Errorf("billed requests ballooned: K=4 %d vs K=1 %d", k4.TotalOps, k1.TotalOps)
	}
	// The domain load must actually spread: every domain shard saw traffic.
	for _, dom := range []string{"prov-0", "prov-1", "prov-2", "prov-3"} {
		if k4.OpsByShard[dom] == 0 {
			t.Errorf("domain shard %s saw no requests: %v", dom, k4.OpsByShard)
		}
	}
	for _, q := range []string{"wal-0", "wal-1", "wal-2", "wal-3"} {
		if k4.OpsByShard[q] == 0 {
			t.Errorf("WAL shard %s saw no requests: %v", q, k4.OpsByShard)
		}
	}
}
