package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"passcloud/internal/cloud/sdb"
	"passcloud/internal/core"
	"passcloud/internal/sim"
	"passcloud/internal/translog"
)

// The tamper-detection harness: drive the pinned commit + reshard workload
// through P3 with the transparency-log sequencer attached, then prove the
// trust story end to end — every committed transaction has a verifying
// inclusion proof, consecutive signed tree heads prove consistent, the
// auditor replays the log against the fabric cleanly, a rewritten bundle is
// flagged, and the sequencer's overhead leaves the client commit tail
// within 1.3x of a log-disabled twin.

// TranslogBenchScale is the live-mode time scale of the translog runs.
const TranslogBenchScale = 50

// TamperConfig parameterizes one transparency-log run.
type TamperConfig struct {
	Seed          int64
	Txns          int
	BundlesPerTxn int
	Workers       int     // P3 commit-daemon pool size
	ClientConns   int     // concurrent client commits
	Scale         float64 // live-mode time scale; 0 uses TranslogBenchScale
	FromK         int     // starting topology (WAL and DB shards)
	ToK           int     // reshard target; == FromK skips the reshard phase
	FaultProb     float64 // per-request fault probability (0 = fault-free)
	ApplyProb     float64 // fraction of mutating faults that are ambiguous
	LogEnabled    bool    // false = the log-disabled twin for the overhead gate
	Tamper        bool    // negative control: rewrite one bundle before the audit
	// CheckpointEvery is the sequencer daemon's interval (simulated time);
	// zero uses one second.
	CheckpointEvery time.Duration
}

// TamperRun is the measured outcome of one transparency-log configuration.
type TamperRun struct {
	LogEnabled    bool    `json:"log_enabled"`
	Tamper        bool    `json:"tamper"`
	FaultProb     float64 `json:"fault_prob"`
	FromK         int     `json:"from_k"`
	ToK           int     `json:"to_k"`
	Txns          int     `json:"txns"`
	BundlesPerTxn int     `json:"bundles_per_txn"`
	Events        int     `json:"events"`
	Workers       int     `json:"workers"`

	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	CommitP50Ms float64 `json:"commit_p50_ms"` // client commit latency, simulated
	CommitP99Ms float64 `json:"commit_p99_ms"`

	TreeSize           int   `json:"tree_size"`
	LogAppends         int64 `json:"log_appends"`
	LogHeads           int64 `json:"log_heads"`
	InclusionVerified  int   `json:"inclusion_verified"`
	ConsistencyChecked int   `json:"consistency_checked"`
	HeadsVerified      int   `json:"heads_verified"`
	AuditClean         bool  `json:"audit_clean"`
	ProofFailures      int   `json:"proof_failures"`
	Divergences        int   `json:"divergences"`
	TamperFlagged      bool  `json:"tamper_flagged"`
	ReopenedOK         bool  `json:"reopened_ok"` // cold Open rebuilt the same head

	ItemCount  int     `json:"item_count"`
	Misplaced  int     `json:"misplaced"`
	Duplicates int     `json:"duplicates"`
	Faults     int64   `json:"faults"`
	TotalOps   int64   `json:"total_ops"`
	CostUSD    float64 `json:"cost_usd"`
}

// TamperDetection runs one transparency-log configuration: commit half the
// transaction set, grow the fabric FromK→ToK while the other half commits,
// settle, checkpoint, then verify every proof the log can issue and audit
// the log against the fabric. With Tamper set, one persisted bundle is
// rewritten behind the fabric's back first — the run then reports whether
// the auditor caught it.
func TamperDetection(c TamperConfig) (TamperRun, error) {
	if c.ClientConns <= 0 {
		c.ClientConns = 32
	}
	if c.Scale == 0 {
		c.Scale = TranslogBenchScale
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = time.Second
	}
	set := commitPipeTxns(c.Seed, c.Txns, c.BundlesPerTxn)
	runtime.GC()

	cfg := sim.DefaultConfig()
	cfg.Seed = c.Seed
	cfg.TimeScale = c.Scale
	cfg.Consistency = sim.Strict // isolate log overhead from staleness retries
	env := sim.NewEnv(cfg)
	dep := core.NewShardedDeployment(env, core.Topology{WALShards: c.FromK, DBShards: c.FromK})
	if c.FaultProb > 0 {
		env.InstallFaults(sim.UniformPlan(c.FaultProb, c.ApplyProb))
	}
	p3 := core.NewP3(dep, core.Options{CommitWorkers: c.Workers})

	run := TamperRun{
		LogEnabled: c.LogEnabled, Tamper: c.Tamper, FaultProb: c.FaultProb,
		FromK: c.FromK, ToK: c.ToK,
		Txns: c.Txns, BundlesPerTxn: c.BundlesPerTxn, Events: c.Txns * c.BundlesPerTxn,
		Workers: c.Workers,
	}

	var l *translog.Log
	var seqStop chan struct{}
	var seqDone chan struct{}
	if c.LogEnabled {
		l = translog.New(env, dep.Store, "")
		defer l.Attach(dep.Commits)()
		seqStop, seqDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(seqDone)
			l.Run(seqStop, c.CheckpointEvery)
		}()
	}

	// checkpoint retries through the armed fault plan: every stage is
	// idempotent, so re-running rolls the durable state forward.
	checkpoint := func() (translog.SignedHead, error) {
		var h translog.SignedHead
		var err error
		for attempt := 0; attempt < 200; attempt++ {
			if h, err = l.Checkpoint(); err == nil {
				return h, nil
			}
		}
		return h, fmt.Errorf("bench: checkpoint never succeeded: %w", err)
	}

	var latMu sync.Mutex
	lat := make([]time.Duration, 0, len(set))
	commitBatch := func(batch []pipeTxn) error {
		sem := make(chan struct{}, c.ClientConns)
		errs := make(chan error, len(batch))
		for i := range batch {
			tx := &batch[i]
			sem <- struct{}{}
			go func() {
				defer func() { <-sem }()
				t0 := env.Now()
				err := p3.Commit(tx.obj, tx.bundles)
				d := env.Now() - t0
				latMu.Lock()
				lat = append(lat, d)
				latMu.Unlock()
				errs <- err
			}()
		}
		var first error
		for range batch {
			if err := <-errs; err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	stopDaemon := make(chan struct{})
	daemonDone := make(chan struct{})
	go func() {
		defer close(daemonDone)
		p3.RunDaemon(stopDaemon, time.Second)
	}()
	var stopOnce sync.Once
	stop := func() {
		stopOnce.Do(func() {
			close(stopDaemon)
			<-daemonDone
			if seqStop != nil {
				close(seqStop)
				<-seqDone
			}
		})
	}
	defer stop()

	wall0 := time.Now()
	t0 := env.Now()
	half := len(set) / 2
	if err := commitBatch(set[:half]); err != nil {
		return run, fmt.Errorf("bench: first commit phase: %w", err)
	}
	if err := p3.Settle(); err != nil {
		return run, err
	}
	// The witnessed head: a third party saw this commitment before the
	// reshard and the second commit phase; everything after must prove
	// consistency against it.
	var witness translog.SignedHead
	if c.LogEnabled {
		var err error
		if witness, err = checkpoint(); err != nil {
			return run, err
		}
	}

	resCh := make(chan error, 1)
	if c.ToK != c.FromK {
		go func() {
			_, err := dep.Reshard(context.Background(), core.Topology{WALShards: c.ToK, DBShards: c.ToK})
			resCh <- err
		}()
	} else {
		resCh <- nil
	}
	err := commitBatch(set[half:])
	if rerr := <-resCh; rerr != nil {
		return run, fmt.Errorf("bench: reshard: %w", rerr)
	}
	if err != nil {
		return run, fmt.Errorf("bench: second commit phase: %w", err)
	}
	if err := p3.Settle(); err != nil {
		return run, err
	}
	run.SimSeconds = (env.Now() - t0).Seconds()

	stop()
	if err := p3.Settle(); err != nil {
		return run, err
	}
	run.WallSeconds = time.Since(wall0).Seconds()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	run.CommitP50Ms = float64(lat[len(lat)/2].Microseconds()) / 1e3
	run.CommitP99Ms = float64(lat[len(lat)*99/100].Microseconds()) / 1e3

	// Verification outside the measurement: instant clock, fault plan
	// disarmed (the proofs and the audit are the subject here, not the
	// retry machinery — the unit tests cover auditing under live faults).
	env.Clock().SetScale(0)
	if c.FaultProb > 0 {
		env.InstallFaults(sim.FaultPlan{})
	}
	usage := env.Meter().Usage()
	run.Faults = usage.Faults
	run.ItemCount = dep.DB.ItemCount()
	mis, dup, err := core.AuditFabric(dep)
	if err != nil {
		return run, err
	}
	run.Misplaced, run.Duplicates = mis, dup

	if c.LogEnabled {
		head, err := checkpoint() // final durable head
		if err != nil {
			return run, err
		}
		run.TreeSize = head.TreeSize

		if c.Tamper {
			// Negative control: rewrite one committed item's attributes
			// directly on its home shard, behind the fabric's back.
			victim := l.Leaves()[len(l.Leaves())/2].Items[0].Name
			dom := dep.DB.Shard(dep.DB.ShardForItem(victim))
			it, err := dom.GetAttributes(victim)
			if err != nil {
				return run, err
			}
			attrs := append([]sdb.Attr(nil), it.Attrs...)
			attrs[0].Value += "-rewritten"
			if err := dom.PutAttributes(sdb.PutRequest{Item: victim, Attrs: attrs, Replace: true}); err != nil {
				return run, err
			}
		}

		rep, err := translog.Audit(dep, l, translog.AuditOptions{Witness: &witness})
		if err != nil {
			return run, err
		}
		run.AuditClean = rep.Clean()
		run.InclusionVerified = rep.InclusionVerified
		run.ConsistencyChecked = rep.ConsistencyChecked
		run.HeadsVerified = rep.HeadsVerified
		run.ProofFailures = len(rep.ProofFailures)
		run.Divergences = len(rep.Divergences)
		for _, d := range rep.Divergences {
			if d.Kind == translog.DivTampered {
				run.TamperFlagged = true
			}
		}

		// Third-party posture: a cold Open from the durable state alone
		// must rebuild the identical signed head (skipped after a tamper —
		// the rewritten fabric is the divergence under test, not the log).
		if !c.Tamper {
			reopened, err := translog.Open(env, dep.Store, "")
			if err != nil {
				return run, fmt.Errorf("bench: cold open: %w", err)
			}
			run.ReopenedOK = reopened.Head() == head
		}
	}
	usage = env.Meter().Usage()
	run.LogAppends = usage.LogAppends
	run.LogHeads = usage.LogHeads
	run.TotalOps = usage.TotalOps
	run.CostUSD = usage.Cost(cfg.StorageWindow)

	// A logged run ends as clean as an unlogged one.
	if n := dep.WAL.Len(); n != 0 {
		return run, fmt.Errorf("bench: %d WAL messages left after settle", n)
	}
	if n := p3.PendingTxns(); n != 0 {
		return run, fmt.Errorf("bench: %d transactions still pending", n)
	}
	return run, nil
}
