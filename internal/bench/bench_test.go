package bench

import (
	"strings"
	"testing"

	"passcloud/internal/core"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// The experiment drivers run live-scaled simulations; these tests exercise
// them at higher-than-production scales so the suite stays fast while still
// verifying the paper-shaped relationships (orderings, not absolute
// values). Ordering margins in the experiments are ≥25%, comfortably above
// the timer noise the higher scale introduces.
//
// Everything live-scaled or large-N is gated behind testing.Short():
// `go test -short` runs only the manual-clock (instant) tests, keeping the
// package under a second; the full suite takes ~30s.

const testScale = 600

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1(7)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][3]bool{ // coupling, ordering, query
		"S3fs": {false, false, false},
		"P1":   {false, true, false},
		"P2":   {false, true, true},
		"P3":   {true, true, true},
	}
	for _, r := range rows {
		w := want[r.Protocol]
		if r.DataCoupling != w[0] || r.CausalOrdering != w[1] || r.EfficientQuery != w[2] {
			t.Errorf("%s: got %+v, want %v", r.Protocol, r, w)
		}
	}
}

func TestTable2Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("live-scaled experiment")
	}
	rows, err := Table2(7, testScale, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]Table2Row{}
	for _, r := range rows {
		by[r.Service] = r
	}
	// The paper's Table 2 ordering: SQS ≪ S3 < SimpleDB.
	if !(by["SQS"].Elapsed < by["S3"].Elapsed && by["S3"].Elapsed < by["SimpleDB"].Elapsed) {
		t.Fatalf("service ordering wrong: %+v", rows)
	}
	if by["SQS"].Elapsed*4 > by["S3"].Elapsed {
		t.Fatalf("SQS should be several times faster than S3: %v vs %v",
			by["SQS"].Elapsed, by["S3"].Elapsed)
	}
}

func TestMicroOverheadOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("live-scaled experiment")
	}
	ec2, uml, err := Fig3(7, testScale)
	if err != nil {
		t.Fatal(err)
	}
	get := func(rs []MicroResult, name string) MicroResult {
		for _, r := range rs {
			if r.Protocol == name {
				return r
			}
		}
		t.Fatalf("missing %s", name)
		return MicroResult{}
	}
	// Figure 3: S3fs < P3 < P1 < P2.
	s3fs, p1, p2, p3 := get(ec2, "S3fs"), get(ec2, "P1"), get(ec2, "P2"), get(ec2, "P3")
	if !(s3fs.Elapsed < p3.Elapsed && p3.Elapsed < p1.Elapsed && p1.Elapsed < p2.Elapsed) {
		t.Fatalf("micro ordering wrong: S3fs=%v P1=%v P2=%v P3=%v",
			s3fs.Elapsed, p1.Elapsed, p2.Elapsed, p3.Elapsed)
	}
	// Table 3: data overhead under 1%, op overheads large, P1 worst.
	rows := Table3(ec2)
	for _, r := range rows {
		if r.Protocol == "S3fs" {
			continue
		}
		if r.DataPct < 0 || r.DataPct > 1.0 {
			t.Errorf("%s data overhead %.2f%%, want <1%%", r.Protocol, r.DataPct)
		}
		if r.OpsPct < 50 {
			t.Errorf("%s op overhead %.1f%%, want substantial", r.Protocol, r.OpsPct)
		}
	}
	// UML runs preserve the ordering.
	us3fs, up3 := get(uml, "S3fs"), get(uml, "P3")
	if us3fs.Elapsed >= up3.Elapsed {
		t.Fatal("UML ordering collapsed")
	}
}

func TestRunWorkloadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("live-scaled experiment")
	}
	w := workload.Nightly(sim.NewRand(7))
	var base Result
	for _, f := range core.Factories() {
		r, err := RunWorkload(w, Setup{Protocol: f.Name, Site: sim.SiteEC2, Era: sim.EraSept09, UML: true, Seed: 7, Scale: testScale})
		if err != nil {
			t.Fatal(err)
		}
		if f.Name == "S3fs" {
			base = r
		}
		if r.MountOps != 240 {
			t.Fatalf("%s: mount ops = %d, want 240", f.Name, r.MountOps)
		}
		gb := float64(r.Usage.BytesIn) / (1 << 30)
		if gb < 9 || gb > 12 {
			t.Fatalf("%s: uploaded %.1f GB, want ≈10.2", f.Name, gb)
		}
		// Nightly overheads are small (flat provenance tree).
		if ov := Overhead(r, base); f.Name != "S3fs" && (ov < -20 || ov > 35) {
			t.Errorf("%s nightly overhead %.1f%%, want small", f.Name, ov)
		}
		if f.Name == "S3fs" && r.CostUSD < 0.5 {
			t.Errorf("nightly baseline cost $%.2f, want ≈$1", r.CostUSD)
		}
	}
}

func TestChunkSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live-scaled experiment")
	}
	points, err := ChunkSweep(7, testScale, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Fatal("no sweep points")
	}
	first, last := points[0], points[len(points)-1]
	if first.Messages <= last.Messages {
		t.Fatalf("smaller chunks should need more messages: %+v", points)
	}
	if first.Elapsed <= last.Elapsed {
		t.Fatalf("1KB chunks should be slower than 8KB: %v vs %v", first.Elapsed, last.Elapsed)
	}
}

func TestBatchSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live-scaled experiment")
	}
	points, err := BatchSweep(7, testScale, []int{1, 25})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Elapsed <= points[1].Elapsed {
		t.Fatalf("batch=1 should be slower than batch=25: %+v", points)
	}
	if points[0].Calls <= points[1].Calls {
		t.Fatal("batch=1 should issue more calls")
	}
}

func TestConsistencySweepShape(t *testing.T) {
	points, err := ConsistencySweep(7, 30)
	if err != nil {
		t.Fatal(err)
	}
	var eventual, strict ConsistencyPoint
	for _, p := range points {
		if p.Mode == sim.Strict {
			strict = p
		} else {
			eventual = p
		}
	}
	if strict.TransientFails != 0 {
		t.Fatalf("strict mode had %d transient failures", strict.TransientFails)
	}
	if eventual.TransientFails == 0 {
		t.Fatal("eventual mode showed no transient detection failures; staleness engine off?")
	}
}

func TestMetadataPersistenceDemo(t *testing.T) {
	violated, err := MetadataPersistenceDemo(7)
	if err != nil {
		t.Fatal(err)
	}
	if !violated {
		t.Fatal("provenance-as-metadata should lose provenance on delete")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	rows, err := Table1(7)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderTable1(&sb, rows)
	out := sb.String()
	for _, want := range []string{"Data-Coupling", "P3", "yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
