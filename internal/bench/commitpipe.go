package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
	"passcloud/internal/uuid"
)

// The commit-throughput benchmark: replay ≥50k provenance events (bundles)
// through P3's log-and-commit path twice — once on the seed's serial path
// (entry-by-entry SendMessage/DeleteMessage, one commit daemon, per-
// transaction BatchPuts) and once on the batched pipeline (SQS batch APIs,
// a commit-daemon pool, cross-transaction BatchPut coalescing) — and
// compare simulated time, wall-clock, service request counts and dollar
// cost. Both runs commit byte-identical provenance, verified by reading
// every object's bundles back through ReadProvenance and hashing them.

// CommitPipeScale is the live-mode time scale of the commit benchmark: the
// serial path spends thousands of simulated seconds acknowledging WAL
// receipts one request at a time, which this scale compresses to a few
// real seconds without pushing measured-path sleeps under the clock's
// accurate range.
const CommitPipeScale = 2000

// CommitPipeRun is one measured run of the commit-throughput benchmark.
type CommitPipeRun struct {
	Mode          string           `json:"mode"` // "serial" | "pipeline"
	Txns          int              `json:"txns"`
	BundlesPerTxn int              `json:"bundles_per_txn"`
	Events        int              `json:"events"` // total provenance bundles committed
	Workers       int              `json:"workers"`
	SimSeconds    float64          `json:"sim_seconds"`
	WallSeconds   float64          `json:"wall_seconds"`
	SQSRequests   int64            `json:"sqs_requests"`
	SDBBatchCalls int64            `json:"sdb_batch_calls"`
	TotalOps      int64            `json:"total_ops"`
	CostUSD       float64          `json:"cost_usd"`
	OpsByKind     map[string]int64 `json:"ops_by_kind"`
	ProvDigest    string           `json:"prov_digest"` // hash of all read-back provenance
}

// pipeTxn is one synthetic transaction: a process plus a chain of file
// versions it derives, padded so the encoded payload spans several WAL
// chunks (the shape that separates batched from entry-by-entry sends).
type pipeTxn struct {
	obj     core.FileObject
	bundles []prov.Bundle
	proc    uuid.UUID
	file    uuid.UUID
}

// commitPipeTxns builds the transaction set once; both runs commit the very
// same bundles, so their recorded provenance must match byte for byte.
func commitPipeTxns(seed int64, txns, bundlesPerTxn int) []pipeTxn {
	rnd := sim.NewRand(seed)
	pad := strings.Repeat("p", 900) // keeps each bundle ≈1 KB without spilling
	out := make([]pipeTxn, 0, txns)
	for t := 0; t < txns; t++ {
		procRef := prov.Ref{UUID: uuid.New(rnd), Version: 1}
		fileUUID := uuid.New(rnd)
		path := fmt.Sprintf("mnt/pipe/%06d", t)
		bundles := make([]prov.Bundle, 0, bundlesPerTxn)
		bundles = append(bundles, prov.Bundle{
			Ref: procRef, Type: prov.Process, Name: "pipeprog",
			Records: []prov.Record{
				{Attr: prov.AttrType, Value: "proc"},
				{Attr: prov.AttrName, Value: "pipeprog"},
				{Attr: prov.AttrEnv, Value: pad},
			},
		})
		var last prov.Ref
		for v := 1; v < bundlesPerTxn; v++ {
			ref := prov.Ref{UUID: fileUUID, Version: v}
			records := []prov.Record{
				{Attr: prov.AttrType, Value: "file"},
				{Attr: prov.AttrName, Value: path},
				{Attr: prov.AttrInput, Xref: procRef},
				{Attr: prov.AttrEnv, Value: pad},
			}
			if v > 1 {
				records = append(records, prov.Record{Attr: prov.AttrPrevVer, Xref: last})
			}
			bundles = append(bundles, prov.Bundle{Ref: ref, Type: prov.File, Name: path, Records: records})
			last = ref
		}
		out = append(out, pipeTxn{
			obj:     core.FileObject{Path: path, Size: 4096, Ref: last},
			bundles: bundles,
			proc:    procRef.UUID,
			file:    fileUUID,
		})
	}
	return out
}

// CommitPipeline measures one mode of the benchmark. batched false runs the
// seed's serial commit path; workers sizes the commit-daemon pool;
// clientConns bounds concurrent client commits (the application side is
// identical in both modes). scale 0 uses CommitPipeScale.
func CommitPipeline(seed int64, txns, bundlesPerTxn, workers, clientConns int, scale float64, batched bool) (CommitPipeRun, error) {
	if clientConns <= 0 {
		clientConns = 64
	}
	if scale == 0 {
		scale = CommitPipeScale
	}
	set := commitPipeTxns(seed, txns, bundlesPerTxn)
	runtime.GC() // keep allocator debt out of the scaled-time measurement

	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.TimeScale = scale
	cfg.Consistency = sim.Strict // isolate commit timing from staleness retries
	env := sim.NewEnv(cfg)
	dep := core.NewDeployment(env)
	p3 := core.NewP3(dep, core.Options{CommitWorkers: workers})
	p3.SetBatchedCommit(batched)

	// The commit-daemon pool drains the WAL while the clients log.
	stopDaemon := make(chan struct{})
	daemonDone := make(chan struct{})
	go func() {
		defer close(daemonDone)
		p3.RunDaemon(stopDaemon, time.Second)
	}()

	sim0 := env.Now()
	wall0 := time.Now()
	sem := make(chan struct{}, clientConns)
	errs := make(chan error, len(set))
	for i := range set {
		tx := &set[i]
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			errs <- p3.Commit(tx.obj, tx.bundles)
		}()
	}
	var firstErr error
	for range set {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	close(stopDaemon)
	<-daemonDone
	if err := p3.Settle(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return CommitPipeRun{}, firstErr
	}

	usage := env.Meter().Usage()
	run := CommitPipeRun{
		Txns:          txns,
		BundlesPerTxn: bundlesPerTxn,
		Events:        txns * bundlesPerTxn,
		Workers:       workers,
		SimSeconds:    (env.Now() - sim0).Seconds(),
		WallSeconds:   time.Since(wall0).Seconds(),
		SQSRequests:   sqsRequests(usage),
		SDBBatchCalls: usage.OpsByKind["sdb.BatchPutAttributes"],
		TotalOps:      usage.TotalOps,
		CostUSD:       usage.Cost(cfg.StorageWindow),
		OpsByKind:     usage.OpsByKind,
	}
	if batched {
		run.Mode = "pipeline"
	} else {
		run.Mode = "serial"
	}

	// Read every transaction's provenance back (outside the measurement, on
	// an instant manual clock) and fold it into the run digest; equal
	// digests across modes prove the commit paths persist byte-identical
	// provenance.
	env.Clock().SetScale(0)
	h := sha256.New()
	for i := range set {
		for _, u := range []uuid.UUID{set[i].file, set[i].proc} {
			bundles, err := core.ReadProvenance(dep, core.BackendSDB, u)
			if err != nil {
				return CommitPipeRun{}, fmt.Errorf("bench: read-back of %s: %w", u, err)
			}
			h.Write(prov.EncodeBundles(bundles))
		}
		// Every data object must have landed with its version link intact.
		o, err := dep.Store.Get(core.DataKey(set[i].obj.Path))
		if err != nil {
			return CommitPipeRun{}, fmt.Errorf("bench: data of %s: %w", set[i].obj.Path, err)
		}
		h.Write([]byte(o.Metadata["prov-uuid"] + "/" + o.Metadata["prov-version"]))
	}
	run.ProvDigest = hex.EncodeToString(h.Sum(nil))

	// A clean pipeline leaves nothing behind: no WAL backlog, no temporary
	// objects, no half-assembled transactions.
	if n := dep.WAL.Len(); n != 0 {
		return CommitPipeRun{}, fmt.Errorf("bench: %d WAL messages left after settle", n)
	}
	if keys, _, _ := dep.Store.ListAll(core.TmpPrefix); len(keys) != 0 {
		return CommitPipeRun{}, fmt.Errorf("bench: %d temp objects leaked", len(keys))
	}
	if n := p3.PendingTxns(); n != 0 {
		return CommitPipeRun{}, fmt.Errorf("bench: %d transactions still pending", n)
	}
	return run, nil
}

// sqsRequests sums every queue request kind, batch or not.
func sqsRequests(u sim.Usage) int64 {
	var n int64
	for _, kind := range []string{
		"sqs.SendMessage", "sqs.ReceiveMessage", "sqs.DeleteMessage",
		"sqs.SendMessageBatch", "sqs.DeleteMessageBatch",
	} {
		n += u.OpsByKind[kind]
	}
	return n
}
