package bench

import (
	"testing"
)

// TestReshardUnderLoadIdentical is the always-on correctness check: a small
// continuous-ingest run that grows K=1→4 mid-flight must lose and duplicate
// nothing and read back byte-identically to a static K=4 deployment of the
// same transaction set.
func TestReshardUnderLoadIdentical(t *testing.T) {
	live, err := ReshardUnderLoad(11, 24, 16, 4, 32, 800, 1, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	static4, err := ReshardUnderLoad(11, 24, 16, 4, 32, 800, 4, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if live.ItemCount != live.Events {
		t.Fatalf("items = %d, want exactly %d (lost or duplicated)", live.ItemCount, live.Events)
	}
	if live.Misplaced != 0 || live.Duplicates != 0 {
		t.Fatalf("audit: misplaced=%d duplicates=%d", live.Misplaced, live.Duplicates)
	}
	if live.CopiedItems == 0 || live.Epoch == 0 {
		t.Fatalf("reshard did not run: %+v", live)
	}
	if live.ProvDigest != static4.ProvDigest || live.ProvDigest == "" {
		t.Fatalf("resharded digest %s differs from static K=4 %s", live.ProvDigest, static4.ProvDigest)
	}
}

// TestReshardSpeedup is the acceptance gate for live resharding at scale:
// on the ≥50k-event workload with ingest running through the whole
// migration, the K=1→4 reshard must (a) lose/duplicate zero provenance
// items, (b) read back byte-identically to a static K=4 deployment, and
// (c) make the post-reshard ingest phase ≥2x faster in simulated time than
// the control run that stayed at K=1.
func TestReshardSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N benchmark")
	}
	const (
		txns          = 790
		bundlesPerTxn = 64 // 50,560 events
		workers       = 16
	)
	live, err := ReshardUnderLoad(7, txns, bundlesPerTxn, workers, 128, 0, 1, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	stay1, err := ReshardUnderLoad(7, txns, bundlesPerTxn, workers, 128, 0, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	static4, err := ReshardUnderLoad(7, txns, bundlesPerTxn, workers, 128, 0, 4, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reshard 1->4: pre=%.1fs during=%.1fs post=%.1fs copied=%d gc=%d wal-moved=%d ops=%d $%.4f",
		live.PreSimSecs, live.DuringSimSecs, live.PostSimSecs,
		live.CopiedItems, live.GCItems, live.WALMigrated, live.TotalOps, live.CostUSD)
	t.Logf("stay K=1:    pre=%.1fs during=%.1fs post=%.1fs ops=%d $%.4f (post speedup %.1fx)",
		stay1.PreSimSecs, stay1.DuringSimSecs, stay1.PostSimSecs, stay1.TotalOps, stay1.CostUSD,
		stay1.PostSimSecs/live.PostSimSecs)

	if live.Events < 50_000 {
		t.Fatalf("only %d events, want >= 50000", live.Events)
	}
	if live.ItemCount != live.Events {
		t.Fatalf("items = %d, want exactly %d (lost or duplicated provenance)", live.ItemCount, live.Events)
	}
	if live.Misplaced != 0 || live.Duplicates != 0 {
		t.Fatalf("audit: misplaced=%d duplicates=%d", live.Misplaced, live.Duplicates)
	}
	if live.ProvDigest == "" || live.ProvDigest != static4.ProvDigest || live.ProvDigest != stay1.ProvDigest {
		t.Fatalf("provenance diverged: live=%s static4=%s stay1=%s", live.ProvDigest, static4.ProvDigest, stay1.ProvDigest)
	}
	if stay1.PostSimSecs < 2*live.PostSimSecs {
		t.Errorf("post-reshard phase: K=1 %.1fs vs resharded %.1fs — %.2fx, want >= 2x",
			stay1.PostSimSecs, live.PostSimSecs, stay1.PostSimSecs/live.PostSimSecs)
	}
}
