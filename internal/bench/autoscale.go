package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"passcloud/internal/autoscale"
	"passcloud/internal/core"
	"passcloud/internal/sim"
)

// The autoscale harness: an open-loop commit workload whose arrival rate
// ramps from a sustainable steady state to a surge that saturates a K=1
// fabric's WAL lane, run twice — once with the autoscale controller closing
// the loop, once with a static K=1 twin. The gate is the SLO the paper's
// elasticity argument rests on: the controller alone (no operator, no
// pre-provisioning) must keep sustained-surge p99 commit latency within a
// small multiple of the steady-state p99, while the static twin demonstrably
// blows through it as its admission queue grows without bound. Commits are
// pure provenance flushes (no data object), so the S3 write gate — a global
// ceiling no amount of sharding relieves — stays out of the picture and the
// per-queue SQS lanes are the capacity the controller actually adds.

// AutoscaleBenchScale is the live-mode time scale of the ramp runs. It is
// deliberately lower than the other live-mode harnesses: commit latencies
// here are sub-second, so a wall-scheduler stall of a few milliseconds
// already shows up in a p99 at high scales.
const AutoscaleBenchScale = 25

// AutoscalePhase is one constant-rate segment of the arrival schedule.
type AutoscalePhase struct {
	Name string  `json:"name"`
	Rate float64 `json:"rate_txn_per_sec"`
	Secs float64 `json:"secs"`
}

// DefaultAutoscalePhases is the pinned ramp: a steady phase well inside one
// SQS lane's 210 req/s admission rate, then a surge holding ~300 txn/s for
// two phases — "surge" absorbs the controller's reaction time (sampling
// interval + reshard), "sustain" is the window the SLO gate judges.
func DefaultAutoscalePhases() []AutoscalePhase {
	return []AutoscalePhase{
		{Name: "steady", Rate: 30, Secs: 60},
		{Name: "surge", Rate: 300, Secs: 45},
		{Name: "sustain", Rate: 300, Secs: 30},
	}
}

// AutoscaleConfig parameterizes one ramp run.
type AutoscaleConfig struct {
	Seed          int64
	Scale         float64 // live-mode time scale; 0 uses AutoscaleBenchScale
	BundlesPerTxn int     // 0 uses 2
	Managed       bool    // false = static K=1 twin, no controller
	Ctl           autoscale.Config
	Interval      time.Duration // controller tick; 0 uses 5s
	Phases        []AutoscalePhase
}

// AutoscalePhaseResult is the measured outcome of one arrival phase.
type AutoscalePhaseResult struct {
	Name    string  `json:"name"`
	Rate    float64 `json:"rate_txn_per_sec"`
	Commits int     `json:"commits"`
	P50Ms   float64 `json:"commit_p50_ms"`
	P99Ms   float64 `json:"commit_p99_ms"`
	KAtEnd  int     `json:"k_at_end"` // live DB width when the phase's last arrival launched
}

// AutoscaleRun is the measured outcome of one ramp configuration.
type AutoscaleRun struct {
	Managed    bool                   `json:"managed"`
	Phases     []AutoscalePhaseResult `json:"phases"`
	Grows      int                    `json:"grows"`
	Shrinks    int                    `json:"shrinks"`
	Deferred   int                    `json:"deferred"`
	FinalK     int                    `json:"final_k"`
	MaxBacklog int                    `json:"max_backlog"`

	Events     int `json:"events"`
	ItemCount  int `json:"item_count"`
	Misplaced  int `json:"misplaced"`
	Duplicates int `json:"duplicates"`

	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	TotalOps    int64   `json:"total_ops"`
	CostUSD     float64 `json:"cost_usd"`
}

// PhaseP99 returns the p99 commit latency (ms) of the named phase, or -1.
func (r AutoscaleRun) PhaseP99(name string) float64 {
	for _, p := range r.Phases {
		if p.Name == name {
			return p.P99Ms
		}
	}
	return -1
}

func pctMs(lat []time.Duration, q int) float64 {
	if len(lat) == 0 {
		return 0
	}
	return float64(lat[len(lat)*q/100].Microseconds()) / 1e3
}

// AutoscaleRamp runs one open-loop ramp: arrivals launch on schedule
// regardless of how slow earlier commits are (latency under overload is the
// measurement, so a closed loop that self-throttles would hide the failure),
// each commit's client-observed latency is attributed to the phase that
// launched it, and the run ends fully settled and audited.
func AutoscaleRamp(c AutoscaleConfig) (AutoscaleRun, error) {
	if c.Scale == 0 {
		c.Scale = AutoscaleBenchScale
	}
	if c.BundlesPerTxn <= 0 {
		c.BundlesPerTxn = 2
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if len(c.Phases) == 0 {
		c.Phases = DefaultAutoscalePhases()
	}
	total := 0
	for _, ph := range c.Phases {
		total += int(ph.Rate * ph.Secs)
	}
	set := commitPipeTxns(c.Seed, total, c.BundlesPerTxn)
	for i := range set {
		set[i].obj = core.FileObject{} // pure provenance flush: skip the S3 leg
	}
	runtime.GC() // keep allocator debt out of the scaled-time measurement

	cfg := sim.DefaultConfig()
	cfg.Seed = c.Seed
	cfg.TimeScale = c.Scale
	cfg.Consistency = sim.Strict // isolate queueing latency from staleness retries
	env := sim.NewEnv(cfg)
	dep := core.NewShardedDeployment(env, core.Topology{WALShards: 1, DBShards: 1})
	p3 := core.NewP3(dep, core.Options{CommitWorkers: 16})

	run := AutoscaleRun{Managed: c.Managed, Events: total * c.BundlesPerTxn}
	wall0 := time.Now()

	stopDaemon := make(chan struct{})
	daemonDone := make(chan struct{})
	go func() {
		defer close(daemonDone)
		p3.RunDaemon(stopDaemon, time.Second)
	}()
	var stopOnce sync.Once
	stop := func() {
		stopOnce.Do(func() {
			close(stopDaemon)
			<-daemonDone
		})
	}
	defer stop()

	var ctl *autoscale.Controller
	ctlStop := make(chan struct{})
	ctlDone := make(chan struct{})
	if c.Managed {
		ctl = autoscale.New(dep, c.Ctl)
		ctl.Enable()
		go func() {
			defer close(ctlDone)
			ctl.Run(context.Background(), ctlStop, c.Interval)
		}()
	} else {
		close(ctlDone)
	}
	var ctlSigOnce, ctlJoinOnce sync.Once
	signalCtl := func() { ctlSigOnce.Do(func() { close(ctlStop) }) }
	joinCtl := func() { ctlJoinOnce.Do(func() { signalCtl(); <-ctlDone }) }
	defer func() {
		// Error paths: never join a mid-reshard controller on a scaled clock.
		signalCtl()
		env.Clock().SetScale(0)
		joinCtl()
	}()

	lat := make([][]time.Duration, len(c.Phases))
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	t0 := env.Now()
	idx := 0
	for pi, ph := range c.Phases {
		start := env.Now()
		n := int(ph.Rate * ph.Secs)
		for i := 0; i < n; i++ {
			due := start + time.Duration(float64(i)/ph.Rate*float64(time.Second))
			if d := due - env.Now(); d > 0 {
				env.Clock().Sleep(d)
			}
			tx := &set[idx]
			idx++
			wg.Add(1)
			go func(pi int, tx *pipeTxn) {
				defer wg.Done()
				c0 := env.Now()
				err := p3.Commit(tx.obj, tx.bundles)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				lat[pi] = append(lat[pi], env.Now()-c0)
			}(pi, tx)
		}
		run.Phases = append(run.Phases, AutoscalePhaseResult{
			Name: ph.Name, Rate: ph.Rate, KAtEnd: dep.DB.Shards(),
		})
		if ctl != nil {
			if st := ctl.Status(); st.MaxBacklog > run.MaxBacklog {
				run.MaxBacklog = st.MaxBacklog
			}
		}
	}
	wg.Wait()
	if firstErr != nil {
		return run, fmt.Errorf("bench: commit under ramp: %w", firstErr)
	}

	// Freeze the controller before draining: the settle tail is idle time,
	// and a shrink there would fold the very capacity being measured into
	// the drain. Signal it first, then flip to the instant clock, THEN join:
	// a controller mid-reshard is blocked inside dep.Reshard, whose copy
	// phase chases the daemon's writes until the WAL drains — joining on the
	// scaled clock would wait out that whole drain in real time.
	run.SimSeconds = (env.Now() - t0).Seconds()
	signalCtl()
	env.Clock().SetScale(0)
	joinCtl()
	if err := p3.Settle(); err != nil {
		return run, err
	}
	stop()
	if err := p3.Settle(); err != nil {
		return run, err
	}
	run.WallSeconds = time.Since(wall0).Seconds()
	run.FinalK = dep.DB.Shards()
	if ctl != nil {
		st := ctl.Status()
		run.Grows, run.Shrinks, run.Deferred = st.Grows, st.Shrinks, st.Deferred
	}

	for pi := range c.Phases {
		l := lat[pi]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		run.Phases[pi].Commits = len(l)
		run.Phases[pi].P50Ms = pctMs(l, 50)
		run.Phases[pi].P99Ms = pctMs(l, 99)
	}

	usage := env.Meter().Usage()
	run.TotalOps = usage.TotalOps
	run.CostUSD = usage.Cost(cfg.StorageWindow)

	// Verification outside the measurement, still on the instant clock.
	run.ItemCount = dep.DB.ItemCount()
	mis, dup, err := core.AuditFabric(dep)
	if err != nil {
		return run, fmt.Errorf("bench: fabric audit after ramp: %w", err)
	}
	run.Misplaced, run.Duplicates = mis, dup
	if run.ItemCount != run.Events {
		return run, fmt.Errorf("bench: %d items after settle, want %d", run.ItemCount, run.Events)
	}
	return run, nil
}

// AutoscaleComparison is the three-run experiment the SLO gate judges: the
// managed ramp, its static K=1 twin, and the managed steady-load negative
// control (same controller, no surge — it must not flap).
type AutoscaleComparison struct {
	Managed       AutoscaleRun `json:"managed"`
	Static        AutoscaleRun `json:"static"`
	SteadyControl AutoscaleRun `json:"steady_control"`
	BoundRatio    float64      `json:"bound_ratio"` // the SLO: sustain p99 <= bound * steady p99
	ManagedRatio  float64      `json:"managed_sustain_over_steady"`
	StaticRatio   float64      `json:"static_sustain_over_steady"`
}

// AutoscaleCompare runs the pinned three-run experiment at the given scale.
func AutoscaleCompare(seed int64, scale float64) (AutoscaleComparison, error) {
	cmp := AutoscaleComparison{BoundRatio: 2.0}
	var err error
	if cmp.Managed, err = AutoscaleRamp(AutoscaleConfig{Seed: seed, Scale: scale, Managed: true}); err != nil {
		return cmp, fmt.Errorf("managed ramp: %w", err)
	}
	if cmp.Static, err = AutoscaleRamp(AutoscaleConfig{Seed: seed, Scale: scale, Managed: false}); err != nil {
		return cmp, fmt.Errorf("static ramp: %w", err)
	}
	steady := []AutoscalePhase{
		{Name: "steady", Rate: 30, Secs: 30},
		{Name: "hold", Rate: 30, Secs: 30},
		{Name: "sustain", Rate: 30, Secs: 30},
	}
	if cmp.SteadyControl, err = AutoscaleRamp(AutoscaleConfig{Seed: seed, Scale: scale, Managed: true, Phases: steady}); err != nil {
		return cmp, fmt.Errorf("steady control: %w", err)
	}
	if s := cmp.Managed.PhaseP99("steady"); s > 0 {
		cmp.ManagedRatio = cmp.Managed.PhaseP99("sustain") / s
	}
	if s := cmp.Static.PhaseP99("steady"); s > 0 {
		cmp.StaticRatio = cmp.Static.PhaseP99("sustain") / s
	}
	return cmp, nil
}
