package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/frontdoor"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
	"passcloud/internal/uuid"
)

// The tenant-isolation harness: drive a compliant tenant's commit workload
// through the front door while an abusive co-tenant replays a retry storm
// against the same fabric under a transient-fault plan, and prove the
// admission layer holds the blast radius — the compliant tenant's commit
// tail latency and goodput must stay within a constant factor of its solo
// baseline, the fabric must hold exactly one copy of every committed item,
// and the compliant tenant's read-back provenance must be byte-identical
// solo vs shared. The same storm with isolation disabled must visibly
// violate the bound (the negative control).

// TenantIsolationScale is the live-mode time scale of the isolation runs.
// The measured path is dominated by modelled service latencies (an S3 PUT
// alone costs ~1.6 simulated seconds), so this scale keeps every measured
// sleep well inside time.Sleep's accurate range.
const TenantIsolationScale = 100

// Storm behaviour: an abusive client ignores RetryAfter hints (which the
// quota below sets in whole seconds) and hammers again after a fraction of
// one request round-trip.
const stormPause = 250 * time.Millisecond

// Quotas. The compliant tenant is provisioned above its offered rate (its
// pacing is client-side), the abuser far below its storm rate, so admission
// — not luck — is what bounds the abuser's share of the shared S3 gate.
var (
	compliantQuota = frontdoor.Quota{Rate: 60, Burst: 32, MaxQueue: 256, Priority: frontdoor.PriorityHigh}
	abusiveQuota   = frontdoor.Quota{Rate: 4, Burst: 2, MaxQueue: 4, Priority: frontdoor.PriorityLow}
)

// TenantIsolationConfig parameterizes one tenant-isolation run.
type TenantIsolationConfig struct {
	Seed          int64
	Txns          int     // compliant tenant's transactions
	BundlesPerTxn int     // provenance bundles (items) per transaction
	Workers       int     // P3 commit-daemon pool size
	ClientConns   int     // compliant tenant's concurrent committers
	OfferedRate   float64 // compliant open-loop arrival rate, commits/sim-sec
	Scale         float64 // live-mode time scale; 0 uses TenantIsolationScale
	K             int     // WAL and DB shards
	FaultProb     float64 // per-request fault probability
	ApplyProb     float64 // fraction of mutating faults that are ambiguous
	DupProb       float64 // queue duplicate-delivery probability
	Abuser        bool    // run the abusive co-tenant storm
	AbuserConns   int     // storm concurrency
	AbuserTxns    int     // size of the fixed transaction set the storm replays
	Isolation     bool    // false = negative control (front door bypassed)
	CombineWindow time.Duration // front-door combine window; 0 = door default
}

// TenantIsolationRun is the measured outcome of one configuration.
type TenantIsolationRun struct {
	Mode          string `json:"mode"` // "solo" | "shared" | "no_isolation"
	Isolation     bool   `json:"isolation"`
	Abuser        bool   `json:"abuser"`
	K             int    `json:"k"`
	Txns          int    `json:"txns"`
	BundlesPerTxn int    `json:"bundles_per_txn"`
	Events        int    `json:"events"` // compliant provenance bundles committed
	Workers       int    `json:"workers"`

	CommitErrors int    `json:"commit_errors"` // failed compliant commits
	FirstError   string `json:"first_error,omitempty"`

	SimSeconds  float64 `json:"sim_seconds"` // compliant commit phase, simulated
	WallSeconds float64 `json:"wall_seconds"`
	Goodput     float64 `json:"goodput_events_per_sim_sec"`

	CommitP50Ms float64 `json:"commit_p50_ms"` // compliant commit latency, simulated
	CommitP99Ms float64 `json:"commit_p99_ms"`

	CompliantAdmitted int64 `json:"compliant_admitted"`
	CompliantQueued   int64 `json:"compliant_queued"`
	CompliantShed     int64 `json:"compliant_shed"`
	AbuserAttempts    int64 `json:"abuser_attempts"`
	AbuserCommitted   int64 `json:"abuser_committed"`
	AbuserAdmitted    int64 `json:"abuser_admitted"`
	AbuserShed        int64 `json:"abuser_shed"`

	Faults            int64 `json:"faults"`
	TenantRetries     int64 `json:"tenant_retries"`       // door's tenant-keyed layer
	TenantBreakerOpen int64 `json:"tenant_breaker_opens"` //
	EndpointRetries   int64 `json:"endpoint_retries"`     // PR 6's per-endpoint layer

	ItemCount   int     `json:"item_count"`
	AbuserItems int     `json:"abuser_items"` // abuser items present after settle
	Misplaced   int     `json:"misplaced"`
	Duplicates  int     `json:"duplicates"`
	TotalOps    int64   `json:"total_ops"`
	CostUSD     float64 `json:"cost_usd"`
	ProvDigest  string  `json:"prov_digest"` // compliant tenant's read-back only
	Verified    bool    `json:"verified"`
}

// tenantIsolationIDs picks the two tenant ids deterministically: the
// compliant tenant is fixed, the abuser is the first candidate whose band
// homes on a different WAL shard at K (at K=1 they necessarily share it).
func tenantIsolationIDs(k int) (compliant, abuser string) {
	compliant = "acme"
	epoch := sim.NewDirectory(k).Active()
	home := epoch.RouteHash(frontdoor.BandFor(compliant).Start())
	for i := 0; ; i++ {
		abuser = fmt.Sprintf("noisy-%d", i)
		if k == 1 || epoch.RouteHash(frontdoor.BandFor(abuser).Start()) != home {
			return compliant, abuser
		}
	}
}

// tenantPipeTxns is commitPipeTxns with every object uuid minted inside the
// tenant's band, so the set co-shards the way front-door traffic does. The
// same (seed, band) always yields the same set — the digest comparison
// between the solo and shared runs depends on it.
func tenantPipeTxns(seed int64, band sim.Band, tag string, txns, bundlesPerTxn int) []pipeTxn {
	rnd := sim.NewRand(seed)
	pad := "" // keep tenant bundles small: the storm replays them endlessly
	for i := 0; i < 40; i++ {
		pad += "tenantpad"
	}
	out := make([]pipeTxn, 0, txns)
	for t := 0; t < txns; t++ {
		procRef := prov.Ref{UUID: core.MintBandUUID(rnd, band), Version: 1}
		fileUUID := core.MintBandUUID(rnd, band)
		path := fmt.Sprintf("mnt/%s/%06d", tag, t)
		bundles := make([]prov.Bundle, 0, bundlesPerTxn)
		bundles = append(bundles, prov.Bundle{
			Ref: procRef, Type: prov.Process, Name: tag + "prog",
			Records: []prov.Record{
				{Attr: prov.AttrType, Value: "proc"},
				{Attr: prov.AttrName, Value: tag + "prog"},
				{Attr: prov.AttrEnv, Value: pad},
			},
		})
		var last prov.Ref
		for v := 1; v < bundlesPerTxn; v++ {
			ref := prov.Ref{UUID: fileUUID, Version: v}
			records := []prov.Record{
				{Attr: prov.AttrType, Value: "file"},
				{Attr: prov.AttrName, Value: path},
				{Attr: prov.AttrInput, Xref: procRef},
				{Attr: prov.AttrEnv, Value: pad},
			}
			if v > 1 {
				records = append(records, prov.Record{Attr: prov.AttrPrevVer, Xref: last})
			}
			bundles = append(bundles, prov.Bundle{Ref: ref, Type: prov.File, Name: path, Records: records})
			last = ref
		}
		out = append(out, pipeTxn{
			obj:     core.FileObject{Path: path, Size: 4096, Ref: last},
			bundles: bundles,
			proc:    procRef.UUID,
			file:    fileUUID,
		})
	}
	return out
}

// TenantIsolation runs one configuration: the compliant tenant commits its
// transaction set open-loop through the front door (sleeping RetryAfter on
// backpressure, as a well-behaved client does) while, if configured, the
// abusive tenant's storm replays a fixed transaction set as fast as the
// door lets it, ignoring every backpressure hint. After the storm stops the
// fabric settles, retention and the cleaner garbage-collect whatever the
// abuser abandoned mid-flight, and the run verifies zero lost or duplicated
// items and digests the compliant tenant's read-back provenance.
func TenantIsolation(c TenantIsolationConfig) (TenantIsolationRun, error) {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.ClientConns <= 0 {
		c.ClientConns = 16
	}
	if c.OfferedRate <= 0 {
		c.OfferedRate = 30
	}
	if c.Scale == 0 {
		c.Scale = TenantIsolationScale
	}
	if c.K <= 0 {
		c.K = 2
	}
	if c.AbuserConns <= 0 {
		// The shared S3 write gate admits ~95 requests/s and a commit's PUT
		// costs ~1.6s of service latency, so a closed-loop storm needs well
		// over 95 x 1.6 outstanding commits before gate queueing dominates
		// the service-latency floor; anything less is a storm the fabric
		// absorbs without the door's help.
		c.AbuserConns = 480
	}
	if c.AbuserTxns <= 0 {
		c.AbuserTxns = 6
	}
	compliantID, abuserID := tenantIsolationIDs(c.K)
	set := tenantPipeTxns(c.Seed, frontdoor.BandFor(compliantID), compliantID, c.Txns, c.BundlesPerTxn)
	abuseSet := tenantPipeTxns(c.Seed^0x5eed, frontdoor.BandFor(abuserID), abuserID, c.AbuserTxns, c.BundlesPerTxn)
	runtime.GC() // keep allocator debt out of the scaled-time measurement

	cfg := sim.DefaultConfig()
	cfg.Seed = c.Seed
	cfg.TimeScale = c.Scale
	cfg.Consistency = sim.Strict // isolate tenant timing from staleness retries
	cfg.DupProb = c.DupProb
	env := sim.NewEnv(cfg)
	dep := core.NewShardedDeployment(env, core.Topology{WALShards: c.K, DBShards: c.K})
	if c.FaultProb > 0 {
		env.InstallFaults(sim.UniformPlan(c.FaultProb, c.ApplyProb))
	}
	p3 := core.NewP3(dep, core.Options{CommitWorkers: c.Workers})
	door := frontdoor.New(dep, p3, frontdoor.Config{
		CombineWindow:    c.CombineWindow,
		DisableIsolation: !c.Isolation,
	})
	compliant := door.Tenant(compliantID, compliantQuota)
	abuser := door.Tenant(abuserID, abusiveQuota)

	mode := "solo"
	switch {
	case c.Abuser && !c.Isolation:
		mode = "no_isolation"
	case c.Abuser:
		mode = "shared"
	}
	run := TenantIsolationRun{
		Mode: mode, Isolation: c.Isolation, Abuser: c.Abuser,
		K: c.K, Txns: c.Txns, BundlesPerTxn: c.BundlesPerTxn,
		Events: c.Txns * c.BundlesPerTxn, Workers: c.Workers,
	}
	wall0 := time.Now()

	// The commit-daemon pool drains the WAL while both tenants log; always
	// joined on the way out.
	stopDaemon := make(chan struct{})
	daemonDone := make(chan struct{})
	go func() {
		defer close(daemonDone)
		p3.RunDaemon(stopDaemon, time.Second)
	}()
	var daemonOnce sync.Once
	stopDaemons := func() {
		daemonOnce.Do(func() {
			close(stopDaemon)
			<-daemonDone
		})
	}
	defer stopDaemons()

	// The storm: AbuserConns clients cycling the fixed abusive set flat out,
	// ignoring RetryAfter. Re-commits of the same content are harmless (they
	// rewrite identical items under fresh transaction uuids); what matters
	// is the request pressure they put on the shared fabric.
	var abAttempts, abCommitted atomic.Int64
	stopStorm := make(chan struct{})
	var stormWG sync.WaitGroup
	if c.Abuser {
		for w := 0; w < c.AbuserConns; w++ {
			w := w
			stormWG.Add(1)
			go func() {
				defer stormWG.Done()
				for j := w; ; j++ {
					select {
					case <-stopStorm:
						return
					default:
					}
					tx := &abuseSet[j%len(abuseSet)]
					abAttempts.Add(1)
					if err := abuser.Commit(tx.obj, tx.bundles); err != nil {
						env.Clock().Sleep(stormPause)
						continue
					}
					abCommitted.Add(1)
				}
			}()
		}
	}
	var stormOnce sync.Once
	stopTheStorm := func() {
		stormOnce.Do(func() {
			close(stopStorm)
			stormWG.Wait()
		})
	}
	defer stopTheStorm()

	// The compliant tenant's phase: open-loop arrivals at OfferedRate spread
	// over ClientConns connections, each commit timed from its arrival and
	// retried (after sleeping the hint) when the door sheds it.
	interarrival := time.Duration(float64(c.ClientConns) / c.OfferedRate * float64(time.Second))
	lat := make([]time.Duration, len(set))
	cerrs := make([]error, len(set))
	work := make(chan int)
	t0 := env.Now()
	var clientWG sync.WaitGroup
	for w := 0; w < c.ClientConns; w++ {
		w := w
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			wrnd := sim.NewRand(c.Seed ^ int64(1000+w))
			for idx := range work {
				tx := &set[idx]
				env.Clock().Sleep(wrnd.Exp(interarrival))
				at := env.Now()
				for {
					err := compliant.Commit(tx.obj, tx.bundles)
					var oc *frontdoor.OverCapacityError
					if errors.As(err, &oc) {
						env.Clock().Sleep(oc.RetryAfter + time.Millisecond)
						continue
					}
					cerrs[idx] = err
					break
				}
				lat[idx] = env.Now() - at
			}
		}()
	}
	for i := range set {
		work <- i
	}
	close(work)
	clientWG.Wait()
	run.SimSeconds = (env.Now() - t0).Seconds()
	stopTheStorm()

	for _, err := range cerrs {
		if err != nil {
			run.CommitErrors++
			if run.FirstError == "" {
				run.FirstError = err.Error()
			}
		}
	}
	committed := (c.Txns - run.CommitErrors) * c.BundlesPerTxn
	if run.SimSeconds > 0 {
		run.Goodput = float64(committed) / run.SimSeconds
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	run.CommitP50Ms = float64(lat[len(lat)/2].Microseconds()) / 1e3
	run.CommitP99Ms = float64(lat[len(lat)*99/100].Microseconds()) / 1e3

	// Drain everything assembled, fault-free, then stop the pool.
	if f := env.Faults(); f != nil {
		f.SetPlan(nil)
	}
	verify := c.Isolation
	if verify {
		if err := p3.Settle(); err != nil {
			return run, err
		}
	}
	stopDaemons()
	if verify {
		if err := p3.Settle(); err != nil {
			return run, err
		}
	}
	run.WallSeconds = time.Since(wall0).Seconds()

	usage := env.Meter().Usage()
	run.TotalOps = usage.TotalOps
	run.CostUSD = usage.Cost(cfg.StorageWindow)
	run.Faults = usage.Faults
	if ops, ok := usage.OpsByTenant[compliantID]; ok {
		run.CompliantAdmitted, run.CompliantQueued, run.CompliantShed = ops.Admitted, ops.Queued, ops.Shed
	}
	if ops, ok := usage.OpsByTenant[abuserID]; ok {
		run.AbuserAdmitted, run.AbuserShed = ops.Admitted, ops.Shed
	}
	run.AbuserAttempts = abAttempts.Load()
	run.AbuserCommitted = abCommitted.Load()
	st := door.Resilience().Stats().Totals()
	run.TenantRetries, run.TenantBreakerOpen = st.Retries, st.BreakerOpens
	if dep.Res != nil {
		run.EndpointRetries = dep.Res.Stats().Totals().Retries
	}

	// The negative control only measures — a fabric an unthrottled storm
	// flooded takes unboundedly long to drain, and the bound violation it
	// exists to show is already in the numbers above.
	if !verify {
		return run, nil
	}

	// Verification outside the measurement, on an instant clock. The storm
	// abandons transactions mid-send (its tenant breaker cuts it off between
	// WAL batches), so first let retention expire the orphaned packets and
	// the cleaner collect the orphaned temp objects — the same path that
	// cleans up crashed clients — then require a fabric as clean as a calm
	// run's: empty WAL, no temp leaks, exact item count, placement audit.
	env.Clock().SetScale(0)
	env.Clock().Advance(5 * 24 * time.Hour)
	if _, err := p3.RunCleaner(0); err != nil {
		return run, fmt.Errorf("bench: cleaner after storm: %w", err)
	}
	if n := dep.WAL.Len(); n != 0 {
		return run, fmt.Errorf("bench: %d WAL messages left after retention", n)
	}
	if keys, _, _ := dep.Store.ListAll(core.TmpPrefix); len(keys) != 0 {
		return run, fmt.Errorf("bench: %d temp objects leaked", len(keys))
	}

	// Ground truth for the abuser: a transaction the storm abandoned must
	// have left nothing, a transaction that landed at least once must be
	// complete — all or nothing, per transaction.
	for i := range abuseSet {
		nproc, err := provItemCount(dep, abuseSet[i].proc)
		if err != nil {
			return run, err
		}
		nfile, err := provItemCount(dep, abuseSet[i].file)
		if err != nil {
			return run, err
		}
		whole := nproc == 1 && nfile == c.BundlesPerTxn-1
		empty := nproc == 0 && nfile == 0
		if !whole && !empty {
			return run, fmt.Errorf("bench: partial abuser txn %d: proc=%d file=%d items", i, nproc, nfile)
		}
		run.AbuserItems += nproc + nfile
	}
	run.ItemCount = dep.DB.ItemCount()
	if want := run.Events + run.AbuserItems; run.ItemCount != want {
		return run, fmt.Errorf("bench: %d items in fabric, want %d (lost or duplicated)", run.ItemCount, want)
	}
	mis, dup, err := core.AuditFabric(dep)
	if err != nil {
		return run, fmt.Errorf("bench: fabric audit: %w", err)
	}
	run.Misplaced, run.Duplicates = mis, dup
	if mis != 0 || dup != 0 {
		return run, fmt.Errorf("bench: audit found %d misplaced, %d duplicated", mis, dup)
	}

	// Digest the compliant tenant's read-back provenance and data pointers;
	// the solo and shared runs must agree byte for byte.
	h := sha256.New()
	for i := range set {
		for _, u := range []uuid.UUID{set[i].file, set[i].proc} {
			bundles, err := core.ReadProvenance(dep, core.BackendSDB, u)
			if err != nil {
				return run, fmt.Errorf("bench: read-back of %s: %w", u, err)
			}
			h.Write(prov.EncodeBundles(bundles))
		}
		o, err := dep.Store.Get(core.DataKey(set[i].obj.Path))
		if err != nil {
			return run, fmt.Errorf("bench: data of %s: %w", set[i].obj.Path, err)
		}
		h.Write([]byte(o.Metadata["prov-uuid"] + "/" + o.Metadata["prov-version"]))
	}
	run.ProvDigest = hex.EncodeToString(h.Sum(nil))
	run.Verified = true
	return run, nil
}

// provItemCount reads back one uuid's item count; absence is zero.
func provItemCount(dep *core.Deployment, u uuid.UUID) (int, error) {
	bundles, err := core.ReadProvenance(dep, core.BackendSDB, u)
	if errors.Is(err, core.ErrNoProvenance) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("bench: read-back of %s: %w", u, err)
	}
	return len(bundles), nil
}
