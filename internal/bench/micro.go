package bench

import (
	"fmt"
	"strings"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/pass"
	"passcloud/internal/prov"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// The §5.1 protocol microbenchmark: run the Blast workload on an unmodified
// PASS system (here: the collector alone, no cloud traffic), capture its
// provenance, then replay just the uploads — the final result objects and
// their provenance — through each protocol. This isolates protocol
// throughput from application time.

// MicroResult is one bar of Figure 3 plus the Table-3 columns.
type MicroResult struct {
	Protocol    string
	UML         bool
	Elapsed     time.Duration
	DataMB      float64 // total bytes transmitted (Table 3 "Data Transmitted")
	Ops         int64   // operations issued (Table 3 "Operations")
	OverheadPct float64 // vs the S3fs bar of the same environment
}

// capturedRun is the offline capture shared by every protocol's replay.
type capturedRun struct {
	finals  []core.FileObject
	closure [][]prov.Bundle
}

// captureBlast runs Blast through PASS only and extracts the final-result
// objects with their provenance closures, in trace order.
func captureBlast(seed int64) (*capturedRun, error) {
	w := workload.Blast(sim.NewRand(seed))
	col := pass.New(sim.NewRand(seed+1), nil)
	for _, ev := range w.Trace.Events {
		if err := col.Apply(ev); err != nil {
			return nil, err
		}
	}
	var run capturedRun
	seen := make(map[string]bool)
	for _, ev := range w.Trace.Events {
		if ev.Path == "" || seen[ev.Path] || !strings.HasPrefix(ev.Path, w.FinalPrefix) {
			continue
		}
		seen[ev.Path] = true
		ref, ok := col.FileRef(ev.Path)
		if !ok {
			continue
		}
		bundles := col.PendingFor(ev.Path)
		for _, b := range bundles {
			col.MarkRecorded(b.Ref)
		}
		run.finals = append(run.finals, core.FileObject{
			Path: ev.Path,
			Size: col.FileSize(ev.Path),
			Ref:  ref,
		})
		run.closure = append(run.closure, bundles)
	}
	return &run, nil
}

// RunMicro uploads the captured Blast results through one protocol and
// measures elapsed time, bytes and operations. The uploads are dispatched
// with the same in-flight window the workload client uses.
func RunMicro(run *capturedRun, s Setup) (MicroResult, error) {
	cfg := s.envConfig()
	env := sim.NewEnv(cfg)
	dep := core.NewDeployment(env)
	proto, err := newProtocol(s.Protocol, dep, core.Options{})
	if err != nil {
		return MicroResult{}, err
	}
	var stopDaemon chan struct{}
	if p3, ok := proto.(*core.P3); ok {
		stopDaemon = make(chan struct{})
		go p3.RunDaemon(stopDaemon, 2*time.Second)
	}

	const window = 16 // concurrent uploads, as in the workload client
	type slot struct{ err error }
	sem := make(chan struct{}, window)
	done := make(chan slot, len(run.finals))
	start := env.Now()
	for i := range run.finals {
		i := i
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			// The upload tool pays the client-side per-op cost too.
			env.ClientOp(int(run.finals[i].Size))
			done <- slot{proto.Commit(run.finals[i], run.closure[i])}
		}()
	}
	var firstErr error
	for range run.finals {
		if s := <-done; s.err != nil && firstErr == nil {
			firstErr = s.err
		}
	}
	elapsed := env.Now() - start
	if stopDaemon != nil {
		close(stopDaemon)
	}
	if err := proto.Settle(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return MicroResult{}, fmt.Errorf("bench: micro %s: %w", s.Protocol, firstErr)
	}
	u := env.Meter().Usage()
	return MicroResult{
		Protocol: s.Protocol,
		UML:      s.UML,
		Elapsed:  elapsed,
		DataMB:   float64(u.BytesIn+u.BytesOut) / (1 << 20),
		Ops:      u.TotalOps,
	}, nil
}

// Fig3 runs the microbenchmark for every protocol on EC2 and under UML —
// the eight bars of Figure 3 — and fills in Table 3's overhead columns.
func Fig3(seed int64, scale float64) (ec2, uml []MicroResult, err error) {
	run, err := captureBlast(seed)
	if err != nil {
		return nil, nil, err
	}
	for _, umlMode := range []bool{false, true} {
		var rs []MicroResult
		var base MicroResult
		for _, f := range core.Factories() {
			s := Setup{Protocol: f.Name, Site: sim.SiteEC2, Era: sim.EraSept09, UML: umlMode, Seed: seed, Scale: scale}
			r, err := RunMicro(run, s)
			if err != nil {
				return nil, nil, err
			}
			if f.Name == "S3fs" {
				base = r
			}
			r.OverheadPct = float64(r.Elapsed-base.Elapsed) / float64(base.Elapsed) * 100
			rs = append(rs, r)
		}
		if umlMode {
			uml = rs
		} else {
			ec2 = rs
		}
	}
	return ec2, uml, nil
}

// Table3 derives the data-transfer and operation overheads from the EC2
// microbenchmark results (the paper's Table 3 comes from the same runs).
type Table3Row struct {
	Protocol   string
	DataMB     float64
	DataPct    float64
	Ops        int64
	OpsPct     float64
	ElapsedSec float64
}

// Table3 formats micro results as the Table-3 rows.
func Table3(rs []MicroResult) []Table3Row {
	var base MicroResult
	for _, r := range rs {
		if r.Protocol == "S3fs" {
			base = r
		}
	}
	rows := make([]Table3Row, 0, len(rs))
	for _, r := range rs {
		row := Table3Row{Protocol: r.Protocol, DataMB: r.DataMB, Ops: r.Ops, ElapsedSec: seconds(r.Elapsed)}
		if r.Protocol != "S3fs" && base.DataMB > 0 {
			row.DataPct = (r.DataMB - base.DataMB) / base.DataMB * 100
			row.OpsPct = float64(r.Ops-base.Ops) / float64(base.Ops) * 100
		}
		rows = append(rows, row)
	}
	return rows
}
