// Package bench regenerates every table and figure of the paper's
// evaluation (§5): the Table-1 property matrix, the Table-2 per-service
// upload microbenchmark, the Table-3 data/operation overheads, the Table-4
// costs, the Table-5 query performance, the Figure-3 protocol
// microbenchmark and the Figure-4 workload benchmarks — plus the ablations
// DESIGN.md calls out.
//
// Workload experiments run the simulation live (virtual time = wall time ×
// scale) so protocol concurrency, gate contention and daemon interference
// show up in elapsed time exactly as they would against real services.
package bench

import (
	"fmt"
	"time"

	"passcloud/internal/core"
	"passcloud/internal/pasfs"
	"passcloud/internal/pass"
	"passcloud/internal/sim"
	"passcloud/internal/workload"
)

// DefaultScale is the live-mode time scale used by the workload
// experiments: 200 simulated seconds per real second keeps the measured
// path's per-request sleeps (≈2 s simulated) around 10 ms of real time —
// comfortably above timer noise — while a full workload run stays under
// ten wall seconds.
const DefaultScale = 200

// Table2Scale is the scale for the high-concurrency service uploads, whose
// shortest gated request (an SQS send, 0.85 s simulated) then sleeps
// ≈8.5 ms of real time.
const Table2Scale = 100

// Setup describes one experimental cell.
type Setup struct {
	Protocol string // "S3fs", "P1", "P2", "P3"
	Site     sim.Site
	Era      sim.Era
	UML      bool
	Seed     int64
	Scale    float64 // live-mode time scale; 0 means DefaultScale
}

// envConfig builds the simulation config for a setup.
func (s Setup) envConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.Site = s.Site
	cfg.Era = s.Era
	cfg.UML = s.UML
	cfg.TimeScale = s.Scale
	if cfg.TimeScale == 0 {
		cfg.TimeScale = DefaultScale
	}
	return cfg
}

// Result is one measured cell.
type Result struct {
	Setup    Setup
	Workload string
	Elapsed  time.Duration // client-visible elapsed (excludes commit daemon)
	CostUSD  float64       // includes the commit daemon (as in Table 4)
	Usage    sim.Usage
	MountOps int64
}

// newProtocol instantiates a protocol by evaluation name.
func newProtocol(name string, dep *core.Deployment, opts core.Options) (core.Protocol, error) {
	for _, f := range core.Factories() {
		if f.Name == name {
			return f.New(dep, opts), nil
		}
	}
	return nil, fmt.Errorf("bench: unknown protocol %q", name)
}

// RunWorkload replays one workload through PA-S3fs under the setup's
// protocol and environment, returning the measured cell. The elapsed time
// is the client's view — for P3 the commit daemon runs concurrently (its
// service contention is felt) but the drain after the application finishes
// is excluded, as in §5.
func RunWorkload(w workload.Workload, s Setup) (Result, error) {
	cfg := s.envConfig()
	env := sim.NewEnv(cfg)
	dep := core.NewDeployment(env)
	proto, err := newProtocol(s.Protocol, dep, core.Options{})
	if err != nil {
		return Result{}, err
	}

	collect := s.Protocol != "S3fs"
	var col *pass.Collector
	if collect {
		col = pass.New(env.Rand(), nil)
	}
	fs := pasfs.New(env, proto, col, pasfs.Config{
		Collect:      collect,
		AsyncCommits: true,
		MaxInflight:  16,
	})

	// P3's commit daemon runs for the duration of the workload.
	var stopDaemon chan struct{}
	if p3, ok := proto.(*core.P3); ok {
		stopDaemon = make(chan struct{})
		go p3.RunDaemon(stopDaemon, 2*time.Second)
	}

	start := env.Now()
	runErr := fs.Run(w.Trace)
	elapsed := env.Now() - start

	if stopDaemon != nil {
		close(stopDaemon)
	}
	if err := proto.Settle(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		return Result{}, fmt.Errorf("bench: %s/%s: %w", w.Name, s.Protocol, runErr)
	}
	usage := env.Meter().Usage()
	return Result{
		Setup:    s,
		Workload: w.Name,
		Elapsed:  elapsed,
		CostUSD:  usage.Cost(cfg.StorageWindow),
		Usage:    usage,
		MountOps: fs.MountOps(),
	}, nil
}

// Overhead returns the relative elapsed-time overhead of r against base.
func Overhead(r, base Result) float64 {
	if base.Elapsed <= 0 {
		return 0
	}
	return float64(r.Elapsed-base.Elapsed) / float64(base.Elapsed) * 100
}

// seconds formats a virtual duration the way the paper's tables do.
func seconds(d time.Duration) float64 { return d.Seconds() }
